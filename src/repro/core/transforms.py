"""Transformations driven by definite points-to information.

The paper's flagship client (Section 1): *pointer replacement* — given
``x = *q`` and the fact that ``q`` definitely points to ``y``, replace
the indirect reference with the direct one, ``x = y``.  The
replacement is legal only when the definite target is a named,
directly-addressable location in the current scope: not an invisible
variable (symbolic name), not the heap, and not an array-tail summary
(footnote 7 of the paper).

:func:`find_pointer_replacements` reports every replaceable indirect
reference; :func:`indirect_references` enumerates all indirect
references with their resolved target sets (the raw material of
Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analysis import PointsToAnalysis
from repro.core.locations import AbsLoc, TAIL
from repro.core.pointsto import D, Definiteness
from repro.simple.ir import (
    BasicStmt,
    IndexSel,
    Ref,
    SReturn,
    Stmt,
)


@dataclass(frozen=True)
class IndirectRef:
    """One occurrence of an indirect reference in a statement."""

    func: str
    stmt_id: int
    ref: Ref
    #: 'deref' for *x / (*x).f forms; 'array' for x[i][j]-style forms
    #: (a dereference combined with array subscripts) — the two
    #: sub-rows of Table 3.
    form: str
    #: Targets of the *dereferenced pointer* itself, NULL excluded —
    #: the paper's metric ("the number of stack locations pointed to
    #: by the dereferenced pointer").
    targets: tuple[tuple[AbsLoc, Definiteness], ...]
    #: True when NULL was also among the pointer's targets.
    may_be_null: bool = False

    @property
    def single_definite(self) -> bool:
        return len(self.targets) == 1 and self.targets[0][1] is D


@dataclass(frozen=True)
class Replacement:
    """A pointer replacement opportunity ``*q -> y``."""

    func: str
    stmt_id: int
    ref: Ref
    target: AbsLoc

    def __str__(self) -> str:
        return f"{self.func}: {self.ref} -> {self.target}"


def ref_form(ref: Ref) -> str:
    if any(isinstance(sel, IndexSel) for sel in ref.path):
        return "array"
    return "deref"


def refs_in_stmt(stmt: Stmt) -> list[Ref]:
    """Every variable reference appearing in a basic statement."""
    refs: list[Ref] = []
    if isinstance(stmt, BasicStmt):
        if stmt.lhs is not None:
            refs.append(stmt.lhs)
        rvalue = stmt.rvalue
        if isinstance(rvalue, Ref):
            refs.append(rvalue)
        elif rvalue is not None and hasattr(rvalue, "ref"):
            refs.append(rvalue.ref)  # AddrOf
        for operand in stmt.operands:
            if isinstance(operand, Ref):
                refs.append(operand)
            elif hasattr(operand, "ref"):
                refs.append(operand.ref)
        for arg in stmt.args:
            if isinstance(arg, Ref):
                refs.append(arg)
    elif isinstance(stmt, SReturn) and isinstance(stmt.value, Ref):
        refs.append(stmt.value)
    return refs


def indirect_references(analysis: PointsToAnalysis) -> list[IndirectRef]:
    """All indirect references in the program, resolved against the
    per-statement (context-merged) points-to information.

    Unreachable statements (never recorded) are skipped, matching the
    paper's counting over analyzed program points.
    """
    result: list[IndirectRef] = []
    for fn in analysis.program.functions.values():
        env = analysis.env(fn.name)
        for stmt in fn.iter_stmts():
            if not isinstance(stmt, (BasicStmt, SReturn)):
                continue
            info = analysis.at_stmt(stmt.stmt_id)
            if info is None:
                continue
            for ref in refs_in_stmt(stmt):
                if not ref.deref:
                    continue
                pointer = env.var_loc(ref.base)
                raw = info.targets_of(pointer)
                targets = tuple(
                    (loc, d)
                    for loc, d in sorted(raw, key=lambda t: str(t[0]))
                    if not loc.is_null
                )
                may_be_null = any(loc.is_null for loc, _ in raw)
                result.append(
                    IndirectRef(
                        fn.name,
                        stmt.stmt_id,
                        ref,
                        ref_form(ref),
                        targets,
                        may_be_null,
                    )
                )
    return result


def replaceable(target: AbsLoc) -> bool:
    """Whether a definite target admits pointer replacement: it must be
    a named location in scope — not invisible (symbolic), not heap,
    and not an array-tail summary."""
    if target.is_symbolic or target.is_heap or target.is_null:
        return False
    if TAIL in target.path:
        return False
    return True


def find_pointer_replacements(
    analysis: PointsToAnalysis,
) -> list[Replacement]:
    """Indirect references that definite information lets us replace
    with direct references (Table 3's 'Scalar Rep' column)."""
    result = []
    for indirect in indirect_references(analysis):
        if not indirect.single_definite:
            continue
        target, _ = indirect.targets[0]
        if replaceable(target):
            result.append(
                Replacement(indirect.func, indirect.stmt_id, indirect.ref, target)
            )
    return result
