"""Deriving alias pairs from points-to sets (Section 7.1).

The paper compares its points-to abstraction against the alias-pair
abstraction of Landi/Ryder and Choi et al.  This module implements the
conversion both ways used in that comparison:

* :func:`alias_pairs` — the alias pairs *implied* by a points-to set,
  obtained by transitive closure: ``(x, y, d)`` implies the pair
  ``(*x, y)``; chaining ``(x,y),(y,z)`` implies ``(**x, *y)`` and
  ``(**x, z)``; and two pointers to the same target are aliased
  (``(*x, *y)``).
* :func:`explicit_alias_pairs` — the program-point alias-pair sets an
  exhaustive pair-based analysis reports (used to reproduce the
  Figure 8/9 spurious-pair discussion).

Alias expressions are rendered as strings like ``**x`` or ``*y`` with
a dereference depth, which is all the comparison needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.locations import AbsLoc
from repro.core.pointsto import PointsToSet


@dataclass(frozen=True)
class AliasExpr:
    """A variable reference expression ``*^depth base``."""

    base: AbsLoc
    depth: int

    def __str__(self) -> str:
        return "*" * self.depth + str(self.base)


@dataclass(frozen=True)
class AliasPair:
    """An unordered alias pair; normalized so ``a <= b`` textually."""

    a: AliasExpr
    b: AliasExpr

    @staticmethod
    def make(x: AliasExpr, y: AliasExpr) -> "AliasPair":
        if str(x) <= str(y):
            return AliasPair(x, y)
        return AliasPair(y, x)

    def __str__(self) -> str:
        return f"({self.a},{self.b})"


def alias_pairs(
    pts: PointsToSet, max_depth: int = 3, include_null: bool = False
) -> set[AliasPair]:
    """All alias pairs implied by ``pts`` up to ``max_depth`` levels of
    dereference (the transitive closure of Section 7.1).

    ``(x, y, d)`` means ``*x`` and ``y`` name the same location; any
    two expressions resolving to the same abstract location are
    aliases of each other.
    """
    # expressions_for[loc] = set of (AliasExpr) that denote loc.
    denotes: dict[AbsLoc, set[AliasExpr]] = {}

    def note(loc: AbsLoc, expr: AliasExpr) -> None:
        denotes.setdefault(loc, set()).add(expr)

    for loc in pts.locations():
        if loc.is_null and not include_null:
            continue
        note(loc, AliasExpr(loc, 0))

    # Breadth-first dereference closure.
    for _ in range(max_depth):
        changed = False
        for src, tgt, _ in pts.triples():
            if tgt.is_null and not include_null:
                continue
            for expr in list(denotes.get(src, ())):
                if expr.depth + 1 > max_depth:
                    continue
                deref = AliasExpr(expr.base, expr.depth + 1)
                if deref not in denotes.get(tgt, set()):
                    note(tgt, deref)
                    changed = True
        if not changed:
            break

    result: set[AliasPair] = set()
    for loc, exprs in denotes.items():
        expr_list = sorted(exprs, key=str)
        for i, x in enumerate(expr_list):
            for y in expr_list[i + 1 :]:
                result.add(AliasPair.make(x, y))
    return result


def explicit_alias_pairs(
    pts: PointsToSet, max_depth: int = 2, include_null: bool = False
) -> set[str]:
    """Alias pairs as an exhaustive pair-tracking analysis would list
    them, rendered as strings (for the Figure 8/9 comparison).

    ``include_null`` makes NULL a regular location, so pairs between
    expressions that both currently resolve to NULL (e.g. ``**x`` and
    ``*y`` right after ``x = &y``) are reported the way a symbolic
    pair-tracking analysis lists them."""
    return {
        str(pair)
        for pair in alias_pairs(pts, max_depth, include_null)
        if "NULL" not in str(pair)
    }


def may_alias(
    pts: PointsToSet, x: AbsLoc, y: AbsLoc, depth_x: int = 1, depth_y: int = 0
) -> bool:
    """Do ``*^depth_x x`` and ``*^depth_y y`` possibly denote the same
    location under ``pts``?"""

    def resolve(base: AbsLoc, depth: int) -> set[AbsLoc]:
        current = {base}
        for _ in range(depth):
            nxt: set[AbsLoc] = set()
            for loc in current:
                for tgt, _ in pts.targets_of(loc):
                    if not tgt.is_null:
                        nxt.add(tgt)
            current = nxt
        return current

    return bool(resolve(x, depth_x) & resolve(y, depth_y))
