"""Abstract stack locations (Section 3.1 of the paper).

Every location that can be the source or target of a points-to
relationship is represented by a named :class:`AbsLoc`:

* named variables — locals, globals, and formal parameters;
* structure fields — the variable's location extended with a field
  path (``a.f``);
* arrays — two sub-locations per array, ``a[head]`` for element 0 and
  ``a[tail]`` for elements 1..n (Table 1);
* *symbolic names* (``1_x``, ``2_x``, ...) standing for invisible
  variables reachable through formals/globals (Section 4.1);
* the single ``heap`` location for all dynamically allocated storage;
* the ``NULL`` pseudo-location (pointers are initialized to NULL);
* one location per *function*, so that function pointers are ordinary
  points-to sources (Section 5);
* a per-function ``retval`` pseudo-location carrying returned pointers.
"""

from __future__ import annotations

import enum
import zlib

from repro.core.perf import CONFIG

#: Path element marking the first element of an array.
HEAD = "[head]"
#: Path element marking elements 1..n of an array.
TAIL = "[tail]"

ARRAY_PARTS = (HEAD, TAIL)


class LocKind(enum.Enum):
    LOCAL = "lo"
    GLOBAL = "gl"
    PARAM = "fp"
    SYMBOLIC = "sy"
    HEAP = "heap"
    NULL = "null"
    FUNCTION = "fn"
    RETVAL = "ret"

    def __str__(self) -> str:
        return self.value

    # Enum's default hash is the member's object id, which varies run
    # to run with address-space layout — so any set containing a kind
    # (AbsLoc hashes, (loc, kind) pairs) iterates in an irreproducible
    # order, and order-sensitive consumers (the slice-memo key) flake.
    # A content hash makes iteration order reproducible.
    def __hash__(self) -> int:
        return zlib.crc32(self.value.encode())


#: Interning table: (base, kind, func, path) -> the canonical AbsLoc.
_INTERN: dict[tuple, "AbsLoc"] = {}


class AbsLoc:
    """A named abstract stack location.

    ``base`` is the variable / symbolic / special name; ``path`` is the
    selector chain (field names and the ``[head]``/``[tail]`` markers);
    ``func`` scopes locals, parameters, symbolic names, and retval to
    their function (None for globals and the special locations).

    Instances are immutable and (by default) *interned*: constructing
    the same (base, kind, func, path) twice yields the same object, so
    the dict-heavy :class:`~repro.core.pointsto.PointsToSet` operations
    hash a precomputed integer and compare by identity instead of
    re-hashing tuples of fields on every lookup.  Equality still falls
    back to a field comparison, so non-interned instances (legacy perf
    mode, unpickling) remain fully interoperable.
    """

    __slots__ = ("base", "kind", "func", "path", "_hash", "_root")

    base: str
    kind: LocKind
    func: str | None
    path: tuple[str, ...]

    def __new__(
        cls,
        base: str,
        kind: LocKind,
        func: str | None = None,
        path: tuple[str, ...] = (),
    ) -> "AbsLoc":
        key = (base, kind, func, path)
        interning = CONFIG.intern_locations
        if interning:
            cached = _INTERN.get(key)
            if cached is not None:
                return cached
        self = object.__new__(cls)
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "func", func)
        object.__setattr__(self, "path", path)
        # Hash content only: ``func`` is None for globals, and on
        # Python < 3.12 ``hash(None)`` is address-based — it varies
        # run to run with address-space layout, which reorders sets of
        # global locations and makes everything downstream of their
        # iteration order (dense-id assignment, slice-memo keys, memo
        # hit counters) irreproducible.  LocKind likewise hashes by
        # content, not object id (see ``LocKind.__hash__``).
        object.__setattr__(
            self, "_hash", hash((base, kind, func or "", path))
        )
        if interning:
            _INTERN[key] = self
        return self

    def __setattr__(self, name, value):
        raise AttributeError("AbsLoc is immutable")

    def __delattr__(self, name):
        raise AttributeError("AbsLoc is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, AbsLoc):
            return NotImplemented
        return (
            self.base == other.base
            and self.kind is other.kind
            and self.func == other.func
            and self.path == other.path
        )

    def __reduce__(self):
        return (AbsLoc, (self.base, self.kind, self.func, self.path))

    def __str__(self) -> str:
        text = self.base
        for element in self.path:
            if element in ARRAY_PARTS:
                text += element
            else:
                text += f".{element}"
        return text

    def __repr__(self) -> str:
        scope = f"{self.func}::" if self.func else ""
        return f"<{scope}{self} {self.kind.value}>"

    # -- derived locations --------------------------------------------

    def root(self) -> "AbsLoc":
        """The whole-variable location this one belongs to (cached)."""
        if not self.path:
            return self
        try:
            return self._root
        except AttributeError:
            root = AbsLoc(self.base, self.kind, self.func)
            object.__setattr__(self, "_root", root)
            return root

    def extend(self, path: tuple[str, ...]) -> "AbsLoc":
        if not path:
            return self
        return AbsLoc(self.base, self.kind, self.func, self.path + path)

    def with_field(self, name: str) -> "AbsLoc":
        return self.extend((name,))

    def with_part(self, part: str) -> "AbsLoc":
        assert part in ARRAY_PARTS
        return self.extend((part,))

    def replace_last_part(self, part: str) -> "AbsLoc":
        assert self.path and self.path[-1] in ARRAY_PARTS
        return AbsLoc(self.base, self.kind, self.func, self.path[:-1] + (part,))

    # -- predicates -------------------------------------------------------

    @property
    def is_special(self) -> bool:
        return self.kind in (LocKind.HEAP, LocKind.NULL)

    @property
    def is_heap(self) -> bool:
        return self.kind is LocKind.HEAP

    @property
    def is_null(self) -> bool:
        return self.kind is LocKind.NULL

    @property
    def is_function(self) -> bool:
        return self.kind is LocKind.FUNCTION

    @property
    def is_symbolic(self) -> bool:
        return self.kind is LocKind.SYMBOLIC

    @property
    def in_array_tail(self) -> bool:
        return TAIL in self.path

    @property
    def is_visible_everywhere(self) -> bool:
        """True if the location keeps its name across call boundaries."""
        return self.kind in (
            LocKind.GLOBAL,
            LocKind.HEAP,
            LocKind.NULL,
            LocKind.FUNCTION,
        )

    def represents_multiple(self) -> bool:
        """Whether this abstract location may stand for several real
        locations *within one context* (heap, array tails)."""
        return self.is_heap or self.in_array_tail


class LocTable:
    """Dense integer ids for the :class:`AbsLoc`\\ s of one analysis.

    The bitset representation of :class:`repro.core.pointsto.
    PointsToSet` stores target sets as Python-int bitsets indexed by
    these ids.  Ids are assigned on first use, so they are dense and —
    because the analysis itself is deterministic — reproducible for a
    given (program, options) pair.  One table is installed per
    analysis run (:func:`install_table`); sets constructed outside a
    run share a process-wide fallback table so ad-hoc sets (tests,
    REPL) still interoperate.
    """

    __slots__ = ("_ids", "_locs", "_roots")

    def __init__(self) -> None:
        self._ids: dict[AbsLoc, int] = {}
        self._locs: list[AbsLoc] = []
        #: id -> id of the location's root() (itself for whole vars).
        self._roots: list[int] = []

    def id_of(self, loc: AbsLoc) -> int:
        index = self._ids.get(loc)
        if index is None:
            index = len(self._locs)
            self._ids[loc] = index
            self._locs.append(loc)
            self._roots.append(index)
            if loc.path:
                self._roots[index] = self.id_of(loc.root())
        return index

    def loc_of(self, index: int) -> AbsLoc:
        return self._locs[index]

    def root_id(self, index: int) -> int:
        return self._roots[index]

    def __len__(self) -> int:
        return len(self._locs)

    def __repr__(self) -> str:
        return f"<LocTable of {len(self._locs)} locations>"


#: Fallback table for sets constructed outside an analysis run.
_FALLBACK_TABLE = LocTable()

_ACTIVE_TABLE: LocTable | None = None


def active_table() -> LocTable:
    """The table new bitset sets bind to (analysis-local or fallback)."""
    table = _ACTIVE_TABLE
    return table if table is not None else _FALLBACK_TABLE


def install_table(table: LocTable | None) -> LocTable | None:
    """Install ``table`` as the active table; returns the previous one
    so callers can restore it (mirrors ``provenance.install``)."""
    global _ACTIVE_TABLE
    previous = _ACTIVE_TABLE
    _ACTIVE_TABLE = table
    return previous


#: The single abstract heap location.
HEAP = AbsLoc("heap", LocKind.HEAP)

#: The NULL pseudo-location.
NULL = AbsLoc("NULL", LocKind.NULL)


def global_loc(name: str) -> AbsLoc:
    return AbsLoc(name, LocKind.GLOBAL)


def function_loc(name: str) -> AbsLoc:
    return AbsLoc(name, LocKind.FUNCTION)


def retval_loc(func: str) -> AbsLoc:
    return AbsLoc("__retval", LocKind.RETVAL, func)


#: Deepest symbolic level generated; beyond it the deepest name is
#: reused, so it represents every deeper invisible variable (safe,
#: possibly imprecise — the paper's scheme is equally k-limited by the
#: finiteness of the caller's points-to set).
MAX_SYMBOLIC_LEVEL = 9

#: Longest field suffix kept in a symbolic name.  Longer access paths
#: are truncated (idempotently), bounding the name space so that the
#: recursion fixed point of Figure 4 terminates on programs that grow
#: stack-allocated recursive structures without bound.
MAX_SYMBOLIC_FIELDS = 4


def symbolic_name(
    source: AbsLoc,
    max_level: int = MAX_SYMBOLIC_LEVEL,
    max_fields: int = MAX_SYMBOLIC_FIELDS,
) -> str:
    """Derive the symbolic name for the target of ``source``.

    Pure pointer chains reproduce the paper's names: the target of
    formal ``x`` is ``1_x``, the target of ``1_x`` is ``2_x``, ...
    Field paths are folded into the name so that targets reached
    through different fields get distinct symbolic names.  Levels and
    field suffixes are capped so the name space is finite; at the cap
    the name reproduces itself, so derivation always terminates.
    """
    base = source.base
    level = 0
    origin = base
    old_fields: list[str] = []
    if source.kind is LocKind.SYMBOLIC:
        prefix, _, rest = base.partition("_")
        if prefix.isdigit():
            level = int(prefix)
            origin = rest
            origin, _, old_suffix = origin.partition("$")
            if old_suffix:
                old_fields = old_suffix.rstrip("+").split(".")
    if source.kind is LocKind.SYMBOLIC and level >= max_level:
        return base  # deepest symbolic absorbs everything below it
    new_level = min(level + 1, max_level)
    fields = old_fields + [p for p in source.path if p not in ARRAY_PARTS]
    truncated = len(fields) > max_fields
    fields = fields[:max_fields]
    suffix = ""
    if fields:
        suffix = "$" + ".".join(fields) + ("+" if truncated else "")
    return f"{new_level}_{origin}{suffix}"
