"""Connection-matrix heap analysis (the paper's companion analysis).

The points-to analysis deliberately folds all dynamic storage into the
single ``heap`` location and defers heap *structure* to "a series of
practical approximations ... from simple connection matrices that
approximate the connectivity of nodes" (Section 8; Ghiya's ACAPS TR).
This module implements the simplest member of that family on top of a
finished points-to analysis:

Two heap-directed pointers ``p`` and ``q`` are **connected** at a
program point if they may point into the *same* connected heap data
structure.  Disconnected pointers can never alias through the heap and
their structures can be processed in parallel — the client the paper's
Section 6.1 anticipates.

Transfer functions (after Ghiya & Hendren):

* ``p = malloc()``       — p starts its own fresh structure;
* ``p = q``, ``p = q->f``— p joins q's structure;
* ``p->f = q``           — the structures of p and q merge;
* ``p = NULL`` / stack   — p leaves the heap domain;
* calls                  — handled conservatively: the structures of
  every heap-directed actual, global, and returned pointer may be
  linked by the callee, except for callees the points-to results show
  to be heap-inert.

The analysis reuses the compositional machinery (same loop fixed
points, same merge discipline) and resolves indirect references with
the per-point points-to information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.analysis import PointsToAnalysis
from repro.core.env import FuncEnv
from repro.core.locations import AbsLoc, LocKind
from repro.core.lvalues import l_locations, r_locations_ref
from repro.core.pointsto import D, PointsToSet
from repro.simple.ir import (
    AddrOf,
    BasicKind,
    BasicStmt,
    Ref,
    SBlock,
    SBreak,
    SContinue,
    SDoWhile,
    SFor,
    SIf,
    SReturn,
    SSwitch,
    SWhile,
    Stmt,
)


class ConnectionMatrix:
    """A symmetric may-connection relation over heap-directed
    pointer locations.  Membership in ``_members`` means "currently
    heap-directed"; every member is implicitly connected to itself."""

    __slots__ = ("_pairs", "_members")

    def __init__(self) -> None:
        self._pairs: set[frozenset] = set()
        self._members: set[AbsLoc] = set()

    # -- construction -----------------------------------------------------

    def copy(self) -> "ConnectionMatrix":
        out = ConnectionMatrix()
        out._pairs = set(self._pairs)
        out._members = set(self._members)
        return out

    # -- mutation ----------------------------------------------------------

    def enter(self, loc: AbsLoc) -> None:
        self._members.add(loc)

    def leave(self, loc: AbsLoc) -> None:
        """Remove ``loc`` from the heap domain (it no longer points
        into the heap)."""
        self._members.discard(loc)
        self._pairs = {pair for pair in self._pairs if loc not in pair}

    def connect(self, a: AbsLoc, b: AbsLoc) -> None:
        self._members.add(a)
        self._members.add(b)
        if a != b:
            self._pairs.add(frozenset((a, b)))

    def connections_of(self, loc: AbsLoc) -> set[AbsLoc]:
        if loc not in self._members:
            return set()
        result = {loc}
        for pair in self._pairs:
            if loc in pair:
                result |= pair
        return result

    def join_structure(self, target: AbsLoc, source: AbsLoc) -> None:
        """``target = source``-style transfer: target joins source's
        structure (strongly: target's old connections were killed by
        the caller first)."""
        for other in self.connections_of(source):
            self.connect(target, other)

    def merge_structures(self, a: AbsLoc, b: AbsLoc) -> None:
        """``a->f = b``-style transfer: everything connected to a may
        now reach everything connected to b."""
        conn_a = self.connections_of(a)
        conn_b = self.connections_of(b)
        for x in conn_a:
            for y in conn_b:
                self.connect(x, y)

    # -- queries ------------------------------------------------------------

    def connected(self, a: AbsLoc, b: AbsLoc) -> bool:
        if a == b:
            return a in self._members
        return frozenset((a, b)) in self._pairs

    def members(self) -> set[AbsLoc]:
        return set(self._members)

    def pair_count(self) -> int:
        return len(self._pairs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConnectionMatrix):
            return NotImplemented
        return self._pairs == other._pairs and self._members == other._members

    def __hash__(self):
        raise TypeError("ConnectionMatrix is unhashable")

    def merge(self, other: "ConnectionMatrix") -> "ConnectionMatrix":
        out = ConnectionMatrix()
        out._pairs = self._pairs | other._pairs
        out._members = self._members | other._members
        return out

    def __str__(self) -> str:
        names = sorted(str(m) for m in self._members)
        pairs = sorted(
            "{%s}" % ",".join(sorted(str(x) for x in pair))
            for pair in self._pairs
        )
        return f"members={{{', '.join(names)}}} pairs={pairs}"


def merge_all_matrices(
    items: Iterable["ConnectionMatrix | None"],
) -> "ConnectionMatrix | None":
    result = None
    for item in items:
        if item is None:
            continue
        result = item if result is None else result.merge(item)
    return result


@dataclass
class _Flow:
    out: ConnectionMatrix | None
    breaks: list = field(default_factory=list)
    continues: list = field(default_factory=list)
    returns: ConnectionMatrix | None = None


class HeapConnectionAnalysis:
    """Per-function connection matrices, computed over the finished
    points-to analysis (which supplies per-point indirect-reference
    resolution and the set of heap-directed locations)."""

    MAX_ITERATIONS = 100

    def __init__(self, analysis: PointsToAnalysis):
        self.analysis = analysis
        self.program = analysis.program
        #: stmt_id -> merged ConnectionMatrix before the statement.
        self.point_info: dict[int, ConnectionMatrix] = {}
        self._heap_inert: dict[str, bool] = {}

    # -- helpers -----------------------------------------------------------

    def pts_at(self, stmt: Stmt) -> PointsToSet | None:
        return self.analysis.at_stmt(stmt.stmt_id)

    def _points_into_heap(
        self, loc: AbsLoc, pts: PointsToSet
    ) -> bool:
        return any(t.is_heap for t, _ in pts.targets_of(loc))

    def function_is_heap_inert(self, name: str) -> bool:
        """A callee is heap-inert if no statement of it (or anything it
        calls, transitively through the points-to-resolved call graph)
        touches a heap-directed pointer."""
        cached = self._heap_inert.get(name)
        if cached is not None:
            return cached
        self._heap_inert[name] = True  # provisional (recursion)
        inert = self._compute_heap_inert(name, set())
        self._heap_inert[name] = inert
        return inert

    def _compute_heap_inert(self, name: str, visiting: set[str]) -> bool:
        if name in visiting:
            return True
        visiting.add(name)
        fn = self.program.functions.get(name)
        if fn is None:
            return True  # externals: modeled effects only
        for stmt in fn.iter_stmts():
            pts = self.pts_at(stmt)
            if pts is not None:
                for src, tgt, _ in pts.triples():
                    if tgt.is_heap or src.is_heap:
                        return False
            if not isinstance(stmt, BasicStmt):
                continue
            if stmt.kind is BasicKind.ALLOC:
                return False
            if stmt.kind is BasicKind.CALL:
                if stmt.callee is None:
                    return False  # indirect call: unknown effects
                if not self._compute_heap_inert(stmt.callee, visiting):
                    return False
        return True

    # -- per-function run ------------------------------------------------------

    def analyze_function(self, name: str) -> ConnectionMatrix | None:
        """Run the connection analysis over one function; entry state
        connects every pair of heap-directed inputs (formals/globals
        may arrive pointing into the same structure)."""
        fn = self.program.functions[name]
        env = self.analysis.env(name)
        entry = ConnectionMatrix()
        entry_pts = self._entry_points_to(fn)
        if entry_pts is not None:
            incoming = [
                loc
                for loc in entry_pts.sources()
                if loc.kind in (LocKind.PARAM, LocKind.GLOBAL, LocKind.SYMBOLIC)
                and self._points_into_heap(loc, entry_pts)
            ]
            for i, a in enumerate(incoming):
                for b in incoming[i:]:
                    entry.connect(a, b)
        flow = self._process(fn.body, entry, env)
        return merge_all_matrices([flow.out, flow.returns])

    def _entry_points_to(self, fn) -> PointsToSet | None:
        for stmt in fn.iter_stmts():
            if isinstance(stmt, BasicStmt):
                return self.pts_at(stmt)
        return None

    def analyze_all(self) -> None:
        for name in self.program.functions:
            self.analyze_function(name)

    # -- flow ---------------------------------------------------------------

    def _record(self, stmt: Stmt, state: ConnectionMatrix) -> None:
        existing = self.point_info.get(stmt.stmt_id)
        if existing is None:
            self.point_info[stmt.stmt_id] = state.copy()
        else:
            self.point_info[stmt.stmt_id] = existing.merge(state)

    def _process(self, stmt: Stmt, state, env) -> _Flow:
        if state is None:
            return _Flow(None)
        if not isinstance(stmt, (SBlock, SBreak, SContinue)):
            self._record(stmt, state)
        if isinstance(stmt, BasicStmt):
            return _Flow(self._process_basic(stmt, state, env))
        if isinstance(stmt, SBlock):
            flow = _Flow(state)
            current = state
            for child in stmt.stmts:
                step = self._process(child, current, env)
                flow.breaks.extend(step.breaks)
                flow.continues.extend(step.continues)
                flow.returns = merge_all_matrices([flow.returns, step.returns])
                current = step.out
            flow.out = current
            return flow
        if isinstance(stmt, SIf):
            then_flow = self._process(stmt.then_block, state, env)
            if stmt.else_block is not None:
                else_flow = self._process(stmt.else_block, state, env)
                else_out = else_flow.out
            else:
                else_flow = _Flow(None)
                else_out = state
            flow = _Flow(merge_all_matrices([then_flow.out, else_out]))
            flow.breaks = then_flow.breaks + else_flow.breaks
            flow.continues = then_flow.continues + else_flow.continues
            flow.returns = merge_all_matrices(
                [then_flow.returns, else_flow.returns]
            )
            return flow
        if isinstance(stmt, (SWhile, SDoWhile, SFor)):
            return self._process_loop(stmt, state, env)
        if isinstance(stmt, SSwitch):
            return self._process_switch(stmt, state, env)
        if isinstance(stmt, SBreak):
            return _Flow(None, breaks=[state])
        if isinstance(stmt, SContinue):
            return _Flow(None, continues=[state])
        if isinstance(stmt, SReturn):
            return _Flow(None, returns=state)
        raise TypeError(type(stmt).__name__)

    def _process_loop(self, stmt, state, env) -> _Flow:
        result = _Flow(None)
        current = state
        exits: list = []
        for _ in range(self.MAX_ITERATIONS):
            exits = []
            if isinstance(stmt, SDoWhile):
                body = self._process(stmt.body, current, env)
                exits.extend(body.breaks)
                cont = merge_all_matrices([body.out] + body.continues)
                evald = self._process(stmt.cond_eval, cont, env)
                back = evald.out
                if stmt.cond is not None and evald.out is not None:
                    exits.append(evald.out)
            else:
                if isinstance(stmt, SFor):
                    pass  # init handled by caller wrapper below
                evald = self._process(stmt.cond_eval, current, env)
                after = evald.out
                if stmt.cond is not None and after is not None:
                    exits.append(after)
                body = self._process(stmt.body, after, env)
                exits.extend(body.breaks)
                back_in = merge_all_matrices([body.out] + body.continues)
                if isinstance(stmt, SFor):
                    stepped = self._process(stmt.step, back_in, env)
                    back = stepped.out
                else:
                    back = back_in
            result.returns = merge_all_matrices(
                [result.returns, body.returns, evald.returns]
            )
            new_state = merge_all_matrices([current, back])
            if _matrices_equal(new_state, current):
                break
            current = new_state
        result.out = merge_all_matrices(exits) if exits else None
        return result

    def _process_switch(self, stmt: SSwitch, state, env) -> _Flow:
        result = _Flow(None)
        exits = []
        fall = None
        for case in stmt.cases:
            arm_in = merge_all_matrices([state, fall])
            arm = self._process(case.body, arm_in, env)
            result.continues.extend(arm.continues)
            result.returns = merge_all_matrices([result.returns, arm.returns])
            exits.extend(arm.breaks)
            if case.falls_through:
                fall = arm.out
            else:
                if arm.out is not None:
                    exits.append(arm.out)
                fall = None
        if fall is not None:
            exits.append(fall)
        if not stmt.has_default:
            exits.append(state)
        result.out = merge_all_matrices(exits)
        return result

    # -- transfer functions -------------------------------------------------------

    def _process_basic(
        self, stmt: BasicStmt, state: ConnectionMatrix, env: FuncEnv
    ) -> ConnectionMatrix:
        pts = self.pts_at(stmt)
        if pts is None:
            return state
        out = state.copy()

        if stmt.kind is BasicKind.ALLOC:
            self._assign_fresh(stmt, out, pts, env)
            return out
        if stmt.kind is BasicKind.CALL:
            self._process_call(stmt, out, pts, env)
            return out
        if stmt.kind in (BasicKind.NOP,):
            return out
        if stmt.lhs is None or stmt.lhs_type is None:
            return out
        if not stmt.lhs_type.involves_pointers():
            return out

        lhs_locs = self._pointer_roots(stmt.lhs, pts, env, write=True)
        strong = (
            len(lhs_locs) == 1
            and lhs_locs[0][1] is D
            and not lhs_locs[0][0].represents_multiple()
        )

        if stmt.lhs.deref:
            # (*p).f = q  — a store into the heap structure p points to:
            # the structures of p and q's connections merge.
            base = env.var_loc(stmt.lhs.base)
            rhs_roots = self._rhs_heap_roots(stmt, pts, env)
            if self._points_into_heap(base, pts):
                for root in rhs_roots:
                    out.merge_structures(base, root)
            # *p = q with p pointing to *stack* storage: each possible
            # target location becomes heap-directed itself (this is how
            # an allocation escapes through an output parameter).
            if rhs_roots:
                for loc, _ in l_locations(stmt.lhs, pts, env):
                    if loc.is_null or loc.is_heap:
                        continue
                    out.enter(loc)
                    for root in rhs_roots:
                        out.join_structure(loc, root)
            return out

        # Direct assignment p = ... : p joins the rhs structure.
        target = lhs_locs[0][0] if lhs_locs else None
        if target is None:
            return out
        rhs_roots = self._rhs_heap_roots(stmt, pts, env)
        if strong:
            out.leave(target)
        for root in rhs_roots:
            out.enter(target)
            out.join_structure(target, root)
        return out

    def _assign_fresh(self, stmt, out, pts, env) -> None:
        if stmt.lhs is None:
            return
        lhs_locs = self._pointer_roots(stmt.lhs, pts, env, write=True)
        if (
            len(lhs_locs) == 1
            and lhs_locs[0][1] is D
            and not lhs_locs[0][0].represents_multiple()
            and not stmt.lhs.deref
        ):
            out.leave(lhs_locs[0][0])
            out.enter(lhs_locs[0][0])
        elif lhs_locs and not stmt.lhs.deref:
            for loc, _ in lhs_locs:
                out.enter(loc)
        elif stmt.lhs.deref:
            # storing a fresh cell into an existing structure keeps the
            # structure connected through the base pointer
            base = env.var_loc(stmt.lhs.base)
            if self._points_into_heap(base, pts):
                out.enter(base)

    def _process_call(self, stmt, out, pts, env) -> None:
        if stmt.callee and self.function_is_heap_inert(stmt.callee):
            pass_through = True
        else:
            pass_through = False
        touched: list[AbsLoc] = []
        if not pass_through:
            for arg in stmt.args:
                if isinstance(arg, Ref) and arg.is_plain_var:
                    loc = env.var_loc(arg.base)
                    if self._points_into_heap(loc, pts):
                        touched.append(loc)
            for src in pts.sources():
                if src.kind is LocKind.GLOBAL and self._points_into_heap(
                    src, pts
                ):
                    touched.append(src)
            for i, a in enumerate(touched):
                for b in touched[i:]:
                    out.merge_structures(a, b)
        if (
            stmt.lhs is not None
            and stmt.lhs_type is not None
            and stmt.lhs_type.involves_pointers()
            and not stmt.lhs.deref
        ):
            lhs_locs = self._pointer_roots(stmt.lhs, pts, env, write=True)
            if len(lhs_locs) == 1 and lhs_locs[0][1] is D:
                out.leave(lhs_locs[0][0])
            # The returned pointer may reference any structure the
            # callee saw (or a fresh one).
            for loc, _ in lhs_locs:
                out.enter(loc)
                for other in touched:
                    out.merge_structures(loc, other)

    def _pointer_roots(self, ref: Ref, pts, env, write: bool):
        if not ref.deref and not ref.path:
            return [(env.var_loc(ref.base), D)]
        return [
            (loc, d)
            for loc, d in l_locations(ref, pts, env)
            if not loc.is_null
        ]

    def _rhs_heap_roots(self, stmt: BasicStmt, pts, env) -> list[AbsLoc]:
        """Stack locations on the rhs whose structure the lhs joins."""
        roots = []
        operands = []
        if stmt.rvalue is not None:
            operands.append(stmt.rvalue)
        operands.extend(stmt.operands)
        for operand in operands:
            if isinstance(operand, Ref):
                base = env.var_loc(operand.base)
                if self._points_into_heap(base, pts):
                    roots.append(base)
                elif operand.deref or operand.path:
                    # the value loaded may itself be heap-directed
                    for tgt, _ in r_locations_ref(operand, pts, env):
                        if tgt.is_heap:
                            roots.append(base)
                            break
                    else:
                        continue
            elif isinstance(operand, AddrOf):
                continue
        return roots

    # -- public queries ------------------------------------------------------

    def connected_at(self, label: str, var_a: str, var_b: str) -> bool:
        """May the named pointers (in the label's function) point into
        the same heap structure at that point?"""
        func, stmt_id = self.program.labels[label]
        matrix = self.point_info.get(stmt_id)
        if matrix is None:
            return False
        env = self.analysis.env(func)
        return matrix.connected(env.var_loc(var_a), env.var_loc(var_b))

    def matrix_at(self, label: str) -> ConnectionMatrix | None:
        _, stmt_id = self.program.labels[label]
        return self.point_info.get(stmt_id)

    def disconnection_ratio(self) -> float:
        """Across all recorded points: the fraction of heap-directed
        pointer pairs proven disconnected (the win over the single
        'heap' location, which connects everything)."""
        possible = 0
        disconnected = 0
        for matrix in self.point_info.values():
            members = sorted(matrix.members(), key=str)
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    possible += 1
                    if not matrix.connected(a, b):
                        disconnected += 1
        if possible == 0:
            return 0.0
        return disconnected / possible


def _matrices_equal(a, b) -> bool:
    if a is None or b is None:
        return a is None and b is None
    return a == b


def analyze_heap_connections(
    analysis: PointsToAnalysis,
) -> HeapConnectionAnalysis:
    """Run the connection analysis over every function."""
    heap = HeapConnectionAnalysis(analysis)
    heap.analyze_all()
    return heap
