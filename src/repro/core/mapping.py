"""Mapping and unmapping of points-to information across calls
(Section 4.1 of the paper).

**Map** prepares the callee's input set from the caller's set at the
call-site: formals inherit the relationships of the corresponding
actuals, globals keep their names, and every location *invisible* to
the callee (caller locals, caller parameters, the caller's own
symbolic names) is represented by a *symbolic name* generated from the
callee-side access path that reaches it (``1_x`` for the target of
formal ``x``, ``2_x`` for the target of ``1_x``, ...).

The correspondence ``symbolic name -> invisible variables`` is the
*map information*; it is deposited on the invocation-graph node and
drives **unmap**, which rewrites the callee's output back into the
caller's name space.  Key properties implemented here:

* an invisible variable is represented by at most one symbolic name
  (Property 3.1) — the first reaching access path wins, and definite
  relationships are mapped before possible ones (the paper's accuracy
  heuristic, illustrated by its x/y/a/b example);
* a symbolic name may represent several invisible variables; any
  relationship involving such a name is weakened to possible, and the
  unmap performs only weak updates through it;
* strong updates on unmap are performed exactly for caller locations
  whose representative stands for them alone (globals, and symbolic
  names with a single represented invisible).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.frontend.ctypes import StructType
from repro.core import provenance
from repro.core.env import FuncEnv
from repro.core.lvalues import r_locations
from repro.core.locations import NULL, AbsLoc, LocKind, retval_loc, symbolic_name
from repro.core.perf import CONFIG
from repro.core.pointsto import D, P, Definiteness, PointsToSet
from repro.simple.ir import Const, Operand, Ref, SimpleFunction


@dataclass
class MapInfo:
    """Per-call mapping information (stored on the IG node)."""

    #: callee symbolic root -> caller roots it represents (ordered).
    to_caller: dict[AbsLoc, tuple[AbsLoc, ...]] = field(default_factory=dict)
    #: caller invisible root -> its unique callee symbolic root.
    from_caller: dict[AbsLoc, AbsLoc] = field(default_factory=dict)
    #: visible caller roots (globals, heap) whose relationships were
    #: carried into the callee — these are owned by the callee output.
    visible_roots: set[AbsLoc] = field(default_factory=set)

    def representative_count(self, callee_root: AbsLoc) -> int:
        return len(self.to_caller.get(callee_root, ()))

    def describe(self) -> str:
        lines = []
        for sym, roots in sorted(
            self.to_caller.items(), key=lambda item: str(item[0])
        ):
            names = ", ".join(str(r) for r in sorted(roots, key=str))
            lines.append(f"({sym}, {{{names}}})")
        return " ".join(lines)


def _definite_first(pairs):
    return sorted(pairs, key=lambda item: (item[2] is not D, str(item[0]), str(item[1])))


class _Mapper:
    def __init__(
        self,
        caller_env: FuncEnv,
        callee_env: FuncEnv,
        input_set: PointsToSet,
    ):
        self.caller_env = caller_env
        self.callee_env = callee_env
        self.input_set = input_set
        self.info = MapInfo()
        self.result = PointsToSet()
        self.queue: deque[AbsLoc] = deque()
        self.processed: set[AbsLoc] = set()
        # Index the caller set by source root for the reachability walk.
        self.by_root: dict[AbsLoc, list] = {}
        for src, tgt, definiteness in input_set.triples():
            self.by_root.setdefault(src.root(), []).append(
                (src, tgt, definiteness)
            )

    # -- symbolic assignment --------------------------------------------

    def map_target(self, target: AbsLoc, via: AbsLoc) -> AbsLoc:
        """Rewrite a caller-side target location into the callee's name
        space, creating a symbolic name when it is invisible.  ``via``
        is the callee-side source location that reaches it (it
        determines the symbolic name's level and suffix)."""
        if target.is_visible_everywhere:
            self.enqueue(target.root(), visible=True)
            return target
        root = target.root()
        existing = self.info.from_caller.get(root)
        if existing is None:
            name = symbolic_name(via)
            root_type = self.caller_env.type_of_loc(root)
            existing = self.callee_env.register_symbolic(name, root_type)
            self.info.from_caller[root] = existing
            represented = self.info.to_caller.get(existing, ())
            if root not in represented:
                self.info.to_caller[existing] = represented + (root,)
            if provenance.CURRENT.enabled:
                provenance.CURRENT.record_symbolic(existing, root, via)
            self.enqueue(root)
        return existing.extend(target.path)

    def enqueue(self, root: AbsLoc, visible: bool = False) -> None:
        if visible:
            if root.kind not in (LocKind.GLOBAL, LocKind.HEAP):
                return
            self.info.visible_roots.add(root)
        if root not in self.processed:
            self.queue.append(root)

    # -- the walk ------------------------------------------------------------

    def map_formals(
        self, callee_fn: SimpleFunction, args: tuple[Operand, ...]
    ) -> None:
        """Map formal parameters from the actuals.

        All pending (formal location, target, definiteness) entries are
        collected first and mapped *definite-first across all formals*
        — the paper's accuracy heuristic: when ``x`` possibly points to
        ``{a, b}`` and ``y`` definitely points to ``b``, ``b`` must map
        via ``y``'s symbolic name, keeping ``y``'s pair definite.
        """
        pending: list[tuple[AbsLoc, AbsLoc, Definiteness]] = []
        formals = callee_fn.params
        for index, (name, ctype) in enumerate(formals):
            if not ctype.involves_pointers():
                continue
            formal_loc = self.callee_env.var_loc(name)
            if index >= len(args):
                # Missing argument (variadic mismatch): NULL, possibly.
                for path in self.callee_env.pointer_paths(ctype):
                    self.result.add(formal_loc.extend(path), NULL, P)
                    if provenance.CURRENT.enabled:
                        provenance.CURRENT.record(
                            formal_loc.extend(path),
                            NULL,
                            False,
                            provenance.RULE_MAP_FORMAL,
                        )
                continue
            arg = args[index]
            if isinstance(ctype, StructType):
                pending.extend(self._struct_formal_entries(formal_loc, ctype, arg))
            else:
                for target, definiteness in r_locations(
                    arg, self.input_set, self.caller_env
                ):
                    pending.append((formal_loc, target, definiteness))
        prov = provenance.CURRENT
        if prov.enabled:
            call_extra = prov.call_extra()
        for formal_loc, target, definiteness in _definite_first(
            [(f, t, d) for f, t, d in pending]
        ):
            mapped = self.map_target(target, via=formal_loc)
            self.result.add(formal_loc, mapped, definiteness)
            if prov.enabled:
                # Parents: the caller facts that justified the actual's
                # R-locations (collected as support while map_formals
                # resolved the argument expressions).
                prov.record(
                    formal_loc,
                    mapped,
                    definiteness is D,
                    provenance.RULE_MAP_FORMAL,
                    prov.support_parents(target),
                    extra=call_extra,
                )

    def _struct_formal_entries(
        self, formal_loc: AbsLoc, ctype: StructType, arg: Operand
    ) -> list[tuple[AbsLoc, AbsLoc, Definiteness]]:
        if isinstance(arg, Const):
            return []
        assert isinstance(arg, Ref) and arg.is_plain_var
        obj = self.caller_env.var_loc(arg.base)
        entries = []
        prov = provenance.CURRENT
        for path in self.callee_env.pointer_paths(ctype):
            src = obj.extend(path)
            targets = self.input_set.targets_of(src)
            if prov.enabled:
                prov.add_support(src, targets)
            for target, definiteness in targets:
                entries.append((formal_loc.extend(path), target, definiteness))
        return entries

    def map_visible_roots(self) -> None:
        for root in list(self.by_root):
            if root.kind in (LocKind.GLOBAL, LocKind.HEAP):
                self.enqueue(root, visible=True)

    def drain(self) -> None:
        prov = provenance.CURRENT
        if prov.enabled:
            latest = prov.latest
            call_extra = prov.call_extra()
            prov_record = prov.record
            rule_reach = provenance.RULE_MAP_REACH
        while self.queue:
            root = self.queue.popleft()
            if root in self.processed:
                continue
            self.processed.add(root)
            pairs = self.by_root.get(root, ())
            for src, tgt, definiteness in _definite_first(pairs):
                if root.is_visible_everywhere:
                    mapped_src = src
                else:
                    rep = self.info.from_caller.get(root)
                    if rep is None:
                        continue  # unreachable root (defensive)
                    mapped_src = rep.extend(src.path)
                mapped_tgt = self.map_target(tgt, via=mapped_src)
                self.result.add(mapped_src, mapped_tgt, definiteness)
                if prov.enabled:
                    parent = latest.get((src, tgt))
                    prov_record(
                        mapped_src,
                        mapped_tgt,
                        definiteness is D,
                        rule_reach,
                        (parent,) if parent is not None else (),
                        call_extra,
                    )

    def degrade_multi_represented(self) -> None:
        """Weaken definite pairs through multi-represented symbolics."""
        for src, tgt, definiteness in list(self.result.triples()):
            if definiteness is not D:
                continue
            if (
                self.info.representative_count(src.root()) > 1
                or self.info.representative_count(tgt.root()) > 1
            ):
                self.result.discard(src, tgt)
                self.result.add(src, tgt, P)
                if provenance.CURRENT.enabled:
                    provenance.CURRENT.record_weaken(
                        src, tgt, rule=provenance.RULE_MAP_DEGRADE
                    )


def map_call(
    caller_env: FuncEnv,
    callee_env: FuncEnv,
    input_set: PointsToSet,
    args: tuple[Operand, ...],
    callee_fn: SimpleFunction,
) -> tuple[PointsToSet, MapInfo]:
    """Compute the callee's input points-to set and the map information
    for one call (the *map* box of Figure 3)."""
    mapper = _Mapper(caller_env, callee_env, input_set)
    mapper.map_formals(callee_fn, args)
    mapper.map_visible_roots()
    mapper.drain()
    mapper.degrade_multi_represented()
    from repro import obs

    if obs.active():
        obs.count("analysis.map_calls")
        obs.count("analysis.mapped_relationships", len(mapper.result))
    return mapper.result, mapper.info


# ---------------------------------------------------------------------------
# Unmap
# ---------------------------------------------------------------------------


@dataclass
class UnmapResult:
    """Caller-side set after the call plus the unmapped return value."""

    output: PointsToSet
    #: (retval sub-path, caller-side target, definiteness) entries.
    returns: list[tuple[tuple[str, ...], AbsLoc, Definiteness]]
    #: Locations of callee locals that escaped (dangling pointers).
    dangling: list[AbsLoc] = field(default_factory=list)
    #: Provenance support for the return-value assignment: (caller
    #: target, id of the callee retval fact).  Empty when recording is
    #: off.
    return_support: list[tuple[AbsLoc, int]] = field(default_factory=list)


def unmap_call(
    caller_input: PointsToSet,
    callee_output: PointsToSet,
    map_info: MapInfo,
    callee_fn: SimpleFunction,
) -> UnmapResult:
    """Rewrite the callee's output back into the caller's name space
    (the *unmap* box of Figure 3)."""
    dangling: list[AbsLoc] = []

    def unrewrite(loc: AbsLoc) -> list[tuple[AbsLoc, bool]]:
        """Caller-side images of a callee location, flagged unique."""
        if loc.is_visible_everywhere:
            return [(loc, True)]
        root = loc.root()
        caller_roots = map_info.to_caller.get(root)
        if caller_roots is None:
            if root.kind in (LocKind.LOCAL, LocKind.PARAM):
                dangling.append(loc)
            return []
        unique = len(caller_roots) == 1
        return [(r.extend(loc.path), unique) for r in caller_roots]

    # Group the callee's pairs by the caller root they describe.  Each
    # entry carries the provenance parents of the callee fact behind it
    # (the empty tuple when recording is off).
    new_rels: dict[
        AbsLoc, list[tuple[AbsLoc, AbsLoc, Definiteness, tuple[int, ...]]]
    ] = {}
    returns: list[tuple[tuple[str, ...], AbsLoc, Definiteness]] = []
    ret_root = retval_loc(callee_fn.name)
    prov = provenance.CURRENT
    recording = prov.enabled
    return_support: list[tuple[AbsLoc, int]] = []

    for src, tgt, definiteness in callee_output.triples():
        src_root = src.root()
        if src_root == ret_root:
            callee_rid = (
                prov.latest.get((src, tgt)) if recording else None
            )
            for caller_tgt, unique in unrewrite(tgt):
                ret_def = definiteness if unique else P
                returns.append((src.path, caller_tgt, ret_def))
                if callee_rid is not None:
                    return_support.append((caller_tgt, callee_rid))
            continue
        if src_root.kind in (
            LocKind.LOCAL,
            LocKind.PARAM,
            LocKind.RETVAL,
            LocKind.FUNCTION,
        ):
            continue  # the callee's frame dies with the call
        sources = unrewrite(src)
        if not sources:
            continue
        targets = unrewrite(tgt)
        if not targets:
            continue  # dangling target: the relationship cannot be named
        parents: tuple[int, ...] = ()
        if recording:
            callee_rid = prov.latest.get((src, tgt))
            if callee_rid is not None:
                parents = (callee_rid,)
        for caller_src, s_unique in sources:
            for caller_tgt, t_unique in targets:
                out_def = definiteness if (s_unique and t_unique) else P
                new_rels.setdefault(caller_src.root(), []).append(
                    (caller_src, caller_tgt, out_def, parents)
                )

    # Decide, per represented caller root, between strong and weak update.
    result = caller_input.copy()
    # Snapshot the caller's sources grouped by root once: the update
    # loop below only ever kills/weakens sources the caller already
    # had (its own additions are grouped under the root being updated),
    # so one pass replaces a per-root scan over all sources.
    sources_by_root: dict[AbsLoc, list[AbsLoc]] | None = None
    if CONFIG.set_fast_paths:
        sources_by_root = {}
        for src in result.sources():
            sources_by_root.setdefault(src.root(), []).append(src)
    updates: dict[AbsLoc, bool] = {}  # caller root -> strong?
    for sym_root, caller_roots in map_info.to_caller.items():
        strong = len(caller_roots) == 1
        for root in caller_roots:
            updates[root] = updates.get(root, True) and strong
    for root in map_info.visible_roots:
        updates[root] = not root.is_heap and updates.get(root, True)
    for root in new_rels:
        # Roots the callee created relationships for without inheriting
        # any (e.g. the heap on its first allocation, or a global the
        # caller never initialized): nothing to kill, everything to add.
        if root not in updates:
            updates[root] = not root.is_heap

    if recording:
        # Weakenings of surviving caller pairs during weak updates are
        # part of the unmap step, not of any assignment rule; and unmap
        # records belong to the call statement, not to the last
        # statement the callee's body happened to process.
        saved_weaken_rule = prov.weaken_rule
        prov.weaken_rule = provenance.RULE_UNMAP_WEAKEN
        prov.restore_caller_stmt()
        call_extra = prov.call_extra()
        prov_record = prov.record
        rule_strong = provenance.RULE_UNMAP_STRONG
        rule_weak = provenance.RULE_UNMAP_WEAK
    for root, strong in updates.items():
        if root.represents_multiple():
            strong = False
        if sources_by_root is not None:
            root_sources = sources_by_root.get(root, ())
        else:
            root_sources = [s for s in result.sources() if s.root() == root]
        if strong:
            for src in root_sources:
                result.kill_source(src)
            for caller_src, caller_tgt, definiteness, parents in new_rels.get(
                root, ()
            ):
                result.add(caller_src, caller_tgt, definiteness)
                if recording:
                    prov_record(
                        caller_src,
                        caller_tgt,
                        definiteness is D,
                        rule_strong,
                        parents,
                        call_extra,
                    )
        else:
            for src in root_sources:
                result.weaken_source(src)
            for caller_src, caller_tgt, _, parents in new_rels.get(root, ()):
                result.add(caller_src, caller_tgt, P)
                if recording:
                    prov_record(
                        caller_src,
                        caller_tgt,
                        False,
                        rule_weak,
                        parents,
                        call_extra,
                    )
    if recording:
        prov.weaken_rule = saved_weaken_rule

    from repro import obs

    if obs.active():
        obs.count("analysis.unmap_calls")
        obs.count("analysis.unmapped_relationships", len(callee_output))
        obs.count("analysis.dangling_locations", len(dangling))
    return UnmapResult(result, returns, dangling, return_support)
