"""Whole-program points-to analysis driver.

``analyze`` (or ``analyze_source``) runs the full pipeline: the
invocation graph is built from ``main`` (left incomplete at indirect
call-sites), the global initializers are executed abstractly, and
``main``'s body is processed with the compositional rules, mapping and
unmapping across every call per Figures 3-5.

The result object carries everything the paper's evaluation needs:
per-program-point points-to sets (merged over calling contexts), the
completed invocation graph with per-node map information, and query
helpers keyed by source labels (a labeled statement is a named program
point, mirroring the paper's "point A/B/C/D" examples).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.frontend.errors import CFrontendError
from repro.simple.ir import (
    BasicKind,
    BasicStmt,
    SimpleProgram,
    Stmt,
    iter_stmts,
)
from repro.simple.simplify import simplify_source
from repro.core import provenance
from repro.core.env import FuncEnv
from repro.core.externals import model_external
from repro.core.funcptr import address_taken_functions, process_call_indirect
from repro.core.interproc import MemoStats, process_call_node
from repro.core.intra import (
    FlowOut,
    IntraAnalyzer,
    apply_assignment,
    null_initialized,
)
from repro.core.invocation_graph import IGNode, InvocationGraph
from repro.core.locations import HEAP, NULL, LocTable, install_table
from repro.core.lvalues import l_locations
from repro.core.perf import CONFIG
from repro.core.pointsto import P, PointsToSet, merge_all


@dataclass
class AnalysisOptions:
    """Tunable analysis behaviour.

    * ``function_pointer_strategy``: ``precise`` (the paper's
      algorithm), ``all_functions`` or ``address_taken`` (the naive
      baselines of Section 5).
    * ``unknown_external_policy``: ``ignore`` (warn; the McCAT
      setting) or ``havoc`` (conservative smash).
    * ``context_sensitive``: when False, every call to a function uses
      a single shared invocation-graph node per function (an ablation
      baseline, not part of the paper's algorithm).
    * ``share_subtrees``: the optimization Section 6 plans for large
      programs — a global per-function memo table keyed on the mapped
      input set, so identical invocation contexts share one analysis
      even when they sit in different sub-trees of the invocation
      graph.  Results are unchanged; only work is saved.
    """

    function_pointer_strategy: str = "precise"
    unknown_external_policy: str = "ignore"
    context_sensitive: bool = True
    share_subtrees: bool = False
    entry_point: str = "main"


def _is_temp_name(name: str) -> bool:
    return name.startswith("__t") and name[3:].isdigit()


class PointsToAnalysis:
    """Result of a whole-program analysis."""

    def __init__(
        self,
        program: SimpleProgram,
        ig: InvocationGraph,
        point_info: dict[int, PointsToSet],
        warnings: list[str],
        options: AnalysisOptions,
        stats: MemoStats | None = None,
    ):
        self.program = program
        self.ig = ig
        self.point_info = point_info
        self.warnings = warnings
        self.options = options
        #: Memoization / fixed-point counters of the producing run.
        self.stats = stats if stats is not None else MemoStats()
        #: Derivation log of the producing run (a
        #: :class:`repro.core.provenance.ProvenanceLog`), or None when
        #: ``perf.CONFIG.track_provenance`` was off.
        self.provenance = None
        #: Slice-keyed memo capture of the producing run (func ->
        #: {("slice", key_pairs): interproc._SliceEntry}), retained so
        #: incremental updates can reuse per-function summaries; None
        #: on decoded or hand-built results.
        self.slice_capture = None
        self._envs: dict[str | None, FuncEnv] = {}
        self._stmt_func: dict[int, str] = {}
        for fn in program.functions.values():
            for stmt in fn.iter_stmts():
                self._stmt_func[stmt.stmt_id] = fn.name

    # -- queries -----------------------------------------------------------

    def env(self, func: str | None) -> FuncEnv:
        raise NotImplementedError  # replaced by the analyzer on creation

    def at_label(self, label: str) -> PointsToSet:
        """The merged points-to set at a labeled program point."""
        func, stmt_id = self.program.labels[label]
        info = self.point_info.get(stmt_id)
        if info is None:
            return PointsToSet()  # unreachable statement
        return info

    def at_stmt(self, stmt_id: int) -> PointsToSet | None:
        return self.point_info.get(stmt_id)

    def function_of_stmt(self, stmt_id: int) -> str | None:
        return self._stmt_func.get(stmt_id)

    def triples_at(
        self, label: str, skip_null: bool = True, skip_temps: bool = True
    ):
        """Human-readable (src, tgt, D/P) strings at a label.

        By default relationships whose source is a compiler-introduced
        temporary (``__tN``) are omitted — they mirror a named
        variable's relationships and only add noise; pass
        ``skip_temps=False`` (or use :meth:`at_label`) for the raw set.
        """
        result = []
        for src, tgt, definiteness in self.at_label(label).triples():
            if skip_null and tgt.is_null:
                continue
            if skip_temps and _is_temp_name(src.base):
                continue
            result.append((str(src), str(tgt), str(definiteness)))
        return sorted(result)


class _TransferCache:
    """Change-driven worklist: per-(invocation-graph node, compound
    statement) transfer memo.

    A compound statement's flow is a deterministic function of its
    input set and of the interprocedural state its calls consult (memo
    tables, recursion fixed-point state, pending inputs).  The
    analyzer maintains a *call-state version* that every mutation of
    that state bumps; an entry recorded at version ``v`` whose subtree
    contains call statements is valid exactly while the version is
    still ``v``, and an entry for a call-free subtree is valid forever
    (for its input).  Re-flowing a statement with an unchanged input
    under a valid entry returns copies of the recorded flow instead of
    re-evaluating the subtree — this is what collapses
    ``analysis.body_passes`` under loop and recursion fixed points.

    Skipping a re-evaluation is behavior-preserving because an equal
    re-run is a no-op on every observable: ``record`` merges are
    idempotent, ``warn`` deduplicates, and function-pointer discovery
    already attached its invocation-graph children on the recorded
    run.  Captured record/warning streams are replayed into any
    active capture frames so the slice-keyed call memo composes with
    the worklist.
    """

    __slots__ = ("analyzer", "node_key")

    def __init__(self, analyzer: "Analyzer", node: IGNode):
        self.analyzer = analyzer
        # IGNode is unhashable; nodes live as long as the run does.
        self.node_key = id(node)

    def lookup(self, stmt: Stmt, input_set: PointsToSet) -> FlowOut | None:
        analyzer = self.analyzer
        obs.count("analysis.worklist_visits")
        entry = analyzer._transfer_entries.get((self.node_key, stmt.stmt_id))
        if entry is None:
            return None
        fp, version, out, breaks, continues, returns, records, warnings = entry
        if fp != input_set.fingerprint():
            return None
        if version is not None and version != analyzer.call_state_version:
            return None
        obs.count("analysis.worklist_skips")
        analyzer.replay_capture(records, warnings)
        return FlowOut(
            out.copy() if out is not None else None,
            breaks=[s.copy() for s in breaks],
            continues=[s.copy() for s in continues],
            returns=returns.copy() if returns is not None else None,
        )

    def begin(self, stmt: Stmt, input_set: PointsToSet):
        analyzer = self.analyzer
        records: list = []
        warnings: list = []
        analyzer._record_frames.append(records)
        analyzer._warn_frames.append(warnings)
        return (stmt, input_set.fingerprint(), records, warnings)

    def end(self, token, flow: FlowOut | None) -> None:
        analyzer = self.analyzer
        stmt, fp, records, warnings = token
        analyzer._record_frames.pop()
        analyzer._warn_frames.pop()
        if flow is None:
            return
        version = (
            analyzer.call_state_version
            if analyzer.stmt_has_calls(stmt)
            else None
        )
        analyzer._transfer_entries[(self.node_key, stmt.stmt_id)] = (
            fp,
            version,
            flow.out.copy() if flow.out is not None else None,
            tuple(s.copy() for s in flow.breaks),
            tuple(s.copy() for s in flow.continues),
            flow.returns.copy() if flow.returns is not None else None,
            records,
            warnings,
        )


class Analyzer:
    """Mutable state of one analysis run."""

    def __init__(
        self,
        program: SimpleProgram,
        options: AnalysisOptions,
        ig: InvocationGraph | None = None,
    ):
        self.program = program
        self.options = options
        self.ig = (
            ig
            if ig is not None
            else InvocationGraph(program, options.entry_point)
        )
        self.point_info: dict[int, PointsToSet] = {}
        self.warnings: list[str] = []
        self._envs: dict[str | None, FuncEnv] = {}
        self._address_taken: set[str] | None = None
        self._shared_nodes: dict[str, IGNode] = {}
        #: share_subtrees memo: (func, canonical input) -> output set.
        self._subtree_cache: dict[tuple, PointsToSet | None] = {}
        self.subtree_cache_hits = 0
        self.subtree_cache_misses = 0
        #: Per-node memo table counters (see interproc.MemoStats).
        self.memo_stats = MemoStats()
        #: Monotone counter over the interprocedural state (memo
        #: tables, fixed-point stored inputs/outputs, pending lists,
        #: in-progress brackets).  Transfer-cache entries for subtrees
        #: containing calls are keyed on it; see :class:`_TransferCache`.
        self.call_state_version = 0
        #: (id(node), stmt_id) -> recorded transfer entry.
        self._transfer_entries: dict[tuple[int, int], tuple] = {}
        #: stmt_id -> whether the statement's subtree contains a call.
        self._has_calls: dict[int, bool] = {}
        #: Active capture frames: every ``record``/``warn`` during a
        #: framed evaluation is appended to all open frames so cached
        #: transfers (and memoized call bodies) can replay them later.
        self._record_frames: list[list] = []
        self._warn_frames: list[list] = []
        #: Symbolic-introduction capture frames (parallel to
        #: ``_record_frames``): every symbolic registration during a
        #: memoized body run is appended so a seed hit in a later run
        #: can re-register the same invisible variables.
        self._symbolic_frames: list[list] = []
        #: Lazily-built per-function closure summaries for slice-keyed
        #: call memoization (see repro.core.slices).
        self._summaries: dict | None = None
        #: Slice-keyed call memo, global per function: func ->
        #: {("slice", key_pairs): interproc._SliceEntry}, LRU-bounded.
        self._slice_memo: dict[str, dict] = {}
        #: Optional incremental seed bank (repro.core.incremental
        #: .SeedBank): consulted on slice-memo misses so a re-run can
        #: replay summaries captured by a prior run.
        self.seed_bank = None
        self.seed_hits = 0

    def bump_call_state(self) -> None:
        """Note a mutation of the interprocedural call state (memo /
        fixed-point / pending state), invalidating call-dependent
        transfer-cache entries."""
        self.call_state_version += 1

    def stmt_has_calls(self, stmt: Stmt) -> bool:
        """Whether ``stmt``'s subtree contains a call that consults
        mutable interprocedural state (any CALL to an analyzed or
        indirect target; ALLOC and direct external calls are pure
        functions of the input set)."""
        cached = self._has_calls.get(stmt.stmt_id)
        if cached is None:
            functions = self.program.functions
            cached = any(
                isinstance(s, BasicStmt)
                and s.kind is BasicKind.CALL
                and (s.callee_ptr is not None or s.callee in functions)
                for s in iter_stmts(stmt)
            )
            self._has_calls[stmt.stmt_id] = cached
        return cached

    def function_summary(self, func: str):
        """The static closure summary used for slice-keyed memoization."""
        if self._summaries is None:
            from repro.core.slices import summarize_program

            self._summaries = summarize_program(self.program, self.options)
        return self._summaries[func]

    def replay_capture(self, records, warnings) -> None:
        """Append a recorded (stmt_id, set) / warning stream to every
        open capture frame (a skipped subtree still contributes to any
        enclosing capture)."""
        for frame in self._record_frames:
            frame.extend(records)
        for frame in self._warn_frames:
            frame.extend(warnings)

    # -- plumbing ---------------------------------------------------------

    def env(self, func: str | None) -> FuncEnv:
        if func not in self._envs:
            env = FuncEnv(self.program, func)
            env.on_symbolic = self._note_symbolic
            self._envs[func] = env
        return self._envs[func]

    def _note_symbolic(self, func, name, ctype) -> None:
        for frame in self._symbolic_frames:
            frame.append((func, name, ctype))

    def warn(self, message: str) -> None:
        for frame in self._warn_frames:
            frame.append(message)
        if message not in self.warnings:
            self.warnings.append(message)

    def address_taken_functions(self) -> set[str]:
        if self._address_taken is None:
            self._address_taken = address_taken_functions(self.program)
        return self._address_taken

    def record(self, stmt: BasicStmt, input_set: PointsToSet) -> None:
        if self._record_frames:
            captured = input_set.copy()
            for frame in self._record_frames:
                frame.append((stmt.stmt_id, captured))
        self.record_by_id(stmt.stmt_id, input_set)

    def record_by_id(self, stmt_id: int, input_set: PointsToSet) -> None:
        existing = self.point_info.get(stmt_id)
        if existing is None:
            self.point_info[stmt_id] = input_set.copy()
        elif CONFIG.set_fast_paths and existing == input_set:
            pass  # merging an equal set is the identity; skip the copy
        else:
            self.point_info[stmt_id] = existing.merge(input_set)

    # -- sub-tree sharing (the optimization planned in Section 6) ---------

    @staticmethod
    def _canonical_input(input_set: PointsToSet):
        if CONFIG.fingerprint_memo:
            # The cached fingerprint is exact (a frozenset of the
            # relationship items), so it is a canonical key directly —
            # no string rendering, no sorting.
            return input_set.fingerprint()
        return ";".join(
            sorted(
                f"{src!r}>{tgt!r}:{d}" for src, tgt, d in input_set.triples()
            )
        )

    def subtree_cache_lookup(
        self, func: str, input_set: PointsToSet
    ) -> tuple[bool, PointsToSet | None]:
        if not self.options.share_subtrees:
            return False, None
        key = (func, self._canonical_input(input_set))
        if key in self._subtree_cache:
            self.subtree_cache_hits += 1
            return True, self._subtree_cache[key]
        self.subtree_cache_misses += 1
        return False, None

    def subtree_cache_store(
        self, func: str, input_set: PointsToSet, output: PointsToSet | None
    ) -> None:
        if not self.options.share_subtrees:
            return
        key = (func, self._canonical_input(input_set))
        self._subtree_cache[key] = output
        self.bump_call_state()

    # -- body analysis -------------------------------------------------------

    def analyze_body(
        self, node: IGNode, func_input: PointsToSet
    ) -> PointsToSet | None:
        env = self.env(node.func)
        fn = self.program.functions[node.func]
        entry = func_input.copy()
        locals_null = null_initialized(env, fn.local_types.items())
        for src, tgt, definiteness in locals_null.triples():
            entry.add(src, tgt, definiteness)
        use_worklist = CONFIG.worklist and not provenance.CURRENT.enabled
        intra = IntraAnalyzer(
            env,
            call_handler=lambda stmt, inp: self.handle_call_stmt(
                node, env, stmt, inp
            ),
            recorder=self.record,
            transfer_cache=_TransferCache(self, node) if use_worklist else None,
        )
        flow = intra.process_root(fn.body, entry)
        return merge_all([flow.out, flow.returns])

    # -- call dispatch ---------------------------------------------------------

    def handle_call_stmt(
        self,
        node: IGNode,
        env: FuncEnv,
        stmt: BasicStmt,
        input_set: PointsToSet,
    ) -> PointsToSet | None:
        if stmt.kind is BasicKind.ALLOC:
            obs.count("analysis.allocs")
            return self._handle_alloc(env, stmt, input_set)
        if stmt.callee_ptr is not None:
            obs.count("analysis.indirect_calls")
            return process_call_indirect(self, node, env, stmt, input_set)
        obs.count("analysis.direct_calls")
        callee = stmt.callee
        assert callee is not None
        if callee in self.program.functions:
            child = self._resolve_child(node, stmt, callee)
            return process_call_node(self, env, child, stmt, input_set)
        return self.handle_external_call(env, stmt, input_set, callee)

    def _resolve_child(
        self, node: IGNode, stmt: BasicStmt, callee: str
    ) -> IGNode:
        if not self.options.context_sensitive:
            # Ablation mode: one shared node per function.
            shared = self._shared_nodes.get(callee)
            if shared is None:
                shared = IGNode(callee)
                self._shared_nodes[callee] = shared
                self.bump_call_state()
            return shared
        assert stmt.call_site is not None
        child = node.child(stmt.call_site, callee)
        if child is None:
            child = self.ig.attach_call(node, stmt.call_site, callee)
            self.bump_call_state()
        return child

    def _handle_alloc(
        self, env: FuncEnv, stmt: BasicStmt, input_set: PointsToSet
    ) -> PointsToSet:
        if stmt.lhs is None or stmt.lhs_type is None:
            return input_set
        if not stmt.lhs_type.involves_pointers():
            return input_set
        llocs = l_locations(stmt.lhs, input_set, env)
        prov = provenance.CURRENT
        if prov.enabled:
            prov.gen_rule = provenance.RULE_ALLOC
        output = apply_assignment(input_set, llocs, [(HEAP, P)])
        # Fresh heap cells read as NULL until written (the machine
        # model zero-initializes allocations; see DESIGN.md) — loading
        # a pointer from untouched heap memory must yield NULL.
        output.add(HEAP, NULL, P)
        if prov.enabled:
            prov.gen_rule = provenance.RULE_ASSIGN_GEN
            prov.record(HEAP, NULL, False, provenance.RULE_ALLOC)
        return output

    def handle_external_call(
        self,
        env: FuncEnv,
        stmt: BasicStmt,
        input_set: PointsToSet,
        callee: str | None = None,
    ) -> PointsToSet:
        name = callee or stmt.callee
        effect_stmt = stmt
        if callee is not None and callee != stmt.callee:
            # Indirect call resolved to an external function.
            effect_stmt = stmt
        effect = model_external(effect_stmt, input_set, env, self.options)
        if effect is None:
            self.warn(
                f"call to unknown external function '{name}'; assuming no "
                f"effect on points-to information"
            )
            output = input_set
            returns = []
            if stmt.lhs_type is not None and stmt.lhs_type.involves_pointers():
                returns = [(HEAP, P)]
        else:
            output = effect.output
            returns = effect.returns
        if (
            stmt.lhs is not None
            and stmt.lhs_type is not None
            and stmt.lhs_type.involves_pointers()
        ):
            prov = provenance.CURRENT
            if prov.enabled:
                prov.gen_rule = provenance.RULE_EXTERN
                prov.gen_extra = {"callee": name, "external": True}
            llocs = l_locations(stmt.lhs, output, env)
            output = apply_assignment(output, llocs, returns)
            if prov.enabled:
                prov.gen_rule = provenance.RULE_ASSIGN_GEN
                prov.gen_extra = None
        return output

    # -- entry ------------------------------------------------------------------

    def run(self) -> PointsToAnalysis:
        log = (
            provenance.ProvenanceLog()
            if CONFIG.track_provenance
            else None
        )
        previous = provenance.install(log) if log is not None else None
        # One dense-id table per run: every bitset set this analysis
        # creates binds to it, keeping ids small and reproducible.
        fresh_table = CONFIG.bitset_sets
        previous_table = install_table(LocTable()) if fresh_table else None
        try:
            # timed, not span: feeds the "core.analysis" phase
            # histogram the daemon's merged metrics aggregate.
            with obs.timed("core.analysis", entry=self.options.entry_point):
                result = self._run()
        finally:
            # The transfer cache only serves one run; free the
            # recorded flows (the result object keeps us alive through
            # its env hook).
            self._transfer_entries.clear()
            self._record_frames.clear()
            self._warn_frames.clear()
            self._slice_memo.clear()
            if fresh_table:
                install_table(previous_table)
            if log is not None:
                provenance.install(previous)  # type: ignore[arg-type]
        result.provenance = log
        if obs.active():
            stats = self.memo_stats
            obs.count("analysis.runs")
            obs.count("analysis.memo_hits", stats.hits)
            obs.count("analysis.memo_misses", stats.misses)
            obs.count("analysis.memo_evictions", stats.evictions)
            obs.count(
                "analysis.recursion_truncations", stats.recursion_truncations
            )
            obs.gauge("analysis.ig_nodes", self.ig.node_count())
            obs.gauge("analysis.program_points", len(self.point_info))
            obs.gauge("analysis.warnings", len(self.warnings))
        return result

    def _run(self) -> PointsToAnalysis:
        global_env = self.env(None)
        initial = null_initialized(
            global_env, self.program.global_types.items()
        )
        init_intra = IntraAnalyzer(
            global_env,
            call_handler=self._global_init_call_handler,
            recorder=self.record,
        )
        with obs.span("analysis.global_init"):
            init_flow = init_intra.process_stmt(
                self.program.global_init, initial
            )
        entry_state = init_flow.out if init_flow.out is not None else initial

        main_fn = self.program.functions[self.options.entry_point]
        main_env = self.env(self.options.entry_point)
        main_input = entry_state.copy()
        # main's own parameters (argc/argv) are initialized to NULL,
        # like all pointers the analysis cannot see being created.
        for src, tgt, definiteness in null_initialized(
            main_env, main_fn.params
        ).triples():
            main_input.add(src, tgt, definiteness)

        with obs.span("analysis.entry_body", func=self.options.entry_point):
            self.analyze_body(self.ig.root, main_input)

        result = PointsToAnalysis(
            self.program,
            self.ig,
            self.point_info,
            self.warnings,
            self.options,
            stats=self.memo_stats,
        )
        result.env = self.env  # share the populated environments
        # Hand the slice-memo capture to the result before run()'s
        # cleanup clears the analyzer-side reference; incremental
        # updates reuse it as the per-function summary bank.
        result.slice_capture = self._slice_memo
        self._slice_memo = {}
        return result

    def _global_init_call_handler(self, stmt, input_set):
        raise CFrontendError(
            "calls are not permitted in global initializers"
        )


def analyze(
    program: SimpleProgram, options: AnalysisOptions | None = None
) -> PointsToAnalysis:
    """Analyze a SIMPLE program; see :class:`AnalysisOptions`."""
    return Analyzer(program, options or AnalysisOptions()).run()


def analyze_source(
    source: str,
    options: AnalysisOptions | None = None,
    filename: str = "<source>",
) -> PointsToAnalysis:
    """Parse, simplify, and analyze C source text in one step."""
    return analyze(simplify_source(source, filename), options)
