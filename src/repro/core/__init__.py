"""The paper's contribution: context-sensitive interprocedural
points-to analysis with integrated function-pointer handling.

Public entry points:

* :func:`repro.core.analysis.analyze` / :func:`analyze_source` — run the
  whole-program analysis, returning a :class:`PointsToAnalysis` result
  with per-program-point points-to sets, the completed invocation graph,
  and per-node map information.
* :mod:`repro.core.aliases` — derive alias pairs from points-to sets.
* :mod:`repro.core.transforms` — pointer replacement using definite
  points-to information.
* :mod:`repro.core.statistics` — the collectors behind Tables 2-6.
* :mod:`repro.core.baselines` — the naive function-pointer strategies
  the paper compares against.
* :mod:`repro.core.heapconn` — the companion connection-matrix heap
  analysis built on the points-to results (Section 8).
* :mod:`repro.core.constprop` — interprocedural constant propagation
  over the same invocation graph (the Section 6.1 framework client).
"""

from repro.core.locations import (
    HEAP,
    NULL,
    AbsLoc,
    LocKind,
    function_loc,
    global_loc,
)
from repro.core.pointsto import Definiteness, PointsToSet
from repro.core.analysis import PointsToAnalysis, analyze, analyze_source
from repro.core.invocation_graph import IGNode, IGNodeKind, InvocationGraph
from repro.core.heapconn import (
    ConnectionMatrix,
    HeapConnectionAnalysis,
    analyze_heap_connections,
)
from repro.core.constprop import ConstantPropagation, propagate_constants
from repro.core.flowinsensitive import andersen, steensgaard

__all__ = [
    "HEAP",
    "NULL",
    "AbsLoc",
    "LocKind",
    "function_loc",
    "global_loc",
    "Definiteness",
    "PointsToSet",
    "PointsToAnalysis",
    "analyze",
    "analyze_source",
    "IGNode",
    "IGNodeKind",
    "InvocationGraph",
    "ConnectionMatrix",
    "HeapConnectionAnalysis",
    "analyze_heap_connections",
    "ConstantPropagation",
    "propagate_constants",
    "andersen",
    "steensgaard",
]
