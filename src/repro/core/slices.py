"""Reachable-slice memo keys for call memoization.

The whole-input memo of Figure 4 misses whenever *anything* in the
mapped input differs — including caller state the callee can never
observe.  ``map_call`` already restricts the input to
formals-reachable targets, but it also carries every global and heap
root into the callee (they are visible everywhere), so the redundant
context is exactly the global state the callee's transitive call
closure never references.  This module computes, per call, the
*reachable slice* of the mapped input — the pairs that can influence
the body's analysis — and the *passthrough* complement that provably
flows through the body unchanged.  The memo is then keyed on the
slice alone; a hit reconstructs the output by swapping the stored
passthrough for the current one (see ``interproc``).

The passthrough invariant (those pairs flow through the body
unchanged, with the same definiteness) holds because a passthrough
root is required to be:

* a GLOBAL root the closure never references by name and that is not
  reachable from any slice root — so no l-location in the body can
  name it and no statement can kill, weaken, or extend it;
* a root *all* of whose targets are visible-everywhere — when a
  sub-call maps it (``map_visible_roots`` carries every global root
  into every callee) each pair maps to itself: no symbolic name is
  created for any of its targets, so it can never become
  multi-represented and have its definite pairs degraded, and the
  sub-call's unmap performs a strong kill-and-re-add of the identical
  pairs (globals are non-heap, uniquely represented visible roots).

Roots failing either condition stay in the *key*: heap (weak-updated
at call boundaries), anything referenced by or reachable from the
closure, and any root with an invisible (param/symbolic) target —
such pairs can change a sub-callee's symbolic multiplicities and
thereby the output, so two calls may only share a memo entry when
they agree on them.

Functions are *opaque* — their nodes keep whole-input keys — when the
static closure cannot bound what the body observes: indirect call
sites anywhere in the closure (the invocation graph completes
dynamically), the function participating in a call cycle (its node
re-enters), or unmodeled externals under the ``havoc`` policy (havoc
smashes everything reachable, including passthrough candidates).

The key is *order-sensitive*: a tuple of the key pairs in the input
set's iteration order.  Symbolic-name assignment during sub-call
mapping is first-reaching-path-wins over that order, so a hit must
guarantee the body would have seen the slice in the same order; the
inert passthrough rows interleaved between key rows never compete for
a symbolic name and cannot perturb it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.externals import (
    CONTENT_COPIERS,
    HEAP_RETURNING_EXTERNALS,
    PURE_EXTERNALS,
    RETURN_FIRST_ARG,
)
from repro.core.locations import HEAP, AbsLoc, LocKind, global_loc
from repro.core.pointsto import PointsToSet
from repro.simple.ir import (
    AddrOf,
    BasicKind,
    BasicStmt,
    Ref,
    SimpleProgram,
    SReturn,
)

#: Externals with effect models confined to argument-reachable state
#: and the heap — both always inside the slice.
MODELED_EXTERNALS = (
    PURE_EXTERNALS
    | HEAP_RETURNING_EXTERNALS
    | RETURN_FIRST_ARG
    | CONTENT_COPIERS
)


@dataclass(frozen=True)
class FunctionSummary:
    """Static facts about a function's transitive direct-call closure."""

    #: Global variable names referenced (read, written, or
    #: address-taken) anywhere in the closure.
    referenced_globals: frozenset[str]
    #: Whether slice keying must be disabled for this function.
    opaque: bool
    #: Why (first reason found), for diagnostics.
    opaque_reason: str | None = None


@dataclass
class _Scan:
    """Single-function scan results (pre-closure)."""

    callees: frozenset[str]
    globals_referenced: frozenset[str]
    has_indirect: bool
    unmodeled_externals: frozenset[str]


def _scan_function(fn, program: SimpleProgram) -> _Scan:
    callees: set[str] = set()
    globals_referenced: set[str] = set()
    has_indirect = False
    unmodeled: set[str] = set()
    shadowed = set(fn.local_types) | {name for name, _ in fn.params}
    global_names = program.global_types.keys()

    def note_name(name: str) -> None:
        if name in global_names and name not in shadowed:
            globals_referenced.add(name)

    def note_operand(operand) -> None:
        if isinstance(operand, Ref):
            note_name(operand.base)
        elif isinstance(operand, AddrOf):
            note_name(operand.ref.base)

    for stmt in fn.iter_stmts():
        if isinstance(stmt, SReturn):
            if stmt.value is not None:
                note_operand(stmt.value)
            continue
        if not isinstance(stmt, BasicStmt):
            continue
        if stmt.lhs is not None:
            note_operand(stmt.lhs)
        if stmt.rvalue is not None:
            note_operand(stmt.rvalue)
        for operand in stmt.operands:
            note_operand(operand)
        for arg in stmt.args:
            note_operand(arg)
        if stmt.kind is BasicKind.CALL:
            if stmt.callee_ptr is not None:
                has_indirect = True
                note_name(stmt.callee_ptr)
            elif stmt.callee in program.functions:
                callees.add(stmt.callee)
            elif stmt.callee is not None and stmt.callee not in MODELED_EXTERNALS:
                unmodeled.add(stmt.callee)
    return _Scan(
        frozenset(callees),
        frozenset(globals_referenced),
        has_indirect,
        frozenset(unmodeled),
    )


def summarize_program(
    program: SimpleProgram, options
) -> dict[str, FunctionSummary]:
    """Per-function closure summaries for slice keying."""
    scans = {
        name: _scan_function(fn, program)
        for name, fn in program.functions.items()
    }
    summaries: dict[str, FunctionSummary] = {}
    havoc = options.unknown_external_policy == "havoc"
    for name in program.functions:
        # Transitive closure over direct callees, including the
        # function itself (its own statements count).
        closure: set[str] = set()
        stack = [name]
        while stack:
            member = stack.pop()
            if member in closure:
                continue
            closure.add(member)
            stack.extend(scans[member].callees)
        referenced: set[str] = set()
        reason = None
        for member in closure:
            scan = scans[member]
            referenced |= scan.globals_referenced
            if reason is None and scan.has_indirect:
                reason = f"indirect call site in '{member}'"
            if reason is None and havoc and scan.unmodeled_externals:
                reason = (
                    f"unmodeled external under havoc policy in '{member}'"
                )
        if reason is None and any(
            name in _reachable(scans, callee)
            for callee in scans[name].callees
        ):
            reason = "participates in a call cycle"
        summaries[name] = FunctionSummary(
            frozenset(referenced), reason is not None, reason
        )
    return summaries


def _reachable(scans: dict[str, _Scan], start: str) -> set[str]:
    seen: set[str] = set()
    stack = [start]
    while stack:
        member = stack.pop()
        if member in seen:
            continue
        seen.add(member)
        stack.extend(scans[member].callees)
    return seen


def split_input(
    func_input: PointsToSet,
    callee_fn,
    callee_env,
    referenced_globals: frozenset[str],
) -> tuple[tuple, tuple, int]:
    """Split the mapped input into (key_pairs, passthrough_pairs).

    Returns ``(key, passthrough, slice_root_count)`` where ``key`` and
    ``passthrough`` are tuples of ``(src, tgt, definiteness)`` triples
    in the input's iteration order.
    """
    triples = list(func_input.triples())

    # Group by source root; note which roots have invisible targets
    # (their pairs can change sub-callee symbolic multiplicities).
    adjacency: dict[AbsLoc, set[AbsLoc]] = {}
    tainted_roots: set[AbsLoc] = set()
    for src, tgt, _ in triples:
        sroot = src.root()
        adjacency.setdefault(sroot, set()).add(tgt.root())
        if not tgt.is_visible_everywhere:
            tainted_roots.add(sroot)

    # Seed roots: the formals, the closure-referenced globals, the heap.
    seeds: list[AbsLoc] = [
        callee_env.var_loc(pname) for pname, _ in callee_fn.params
    ]
    for gname in referenced_globals:
        seeds.append(global_loc(gname))
    seeds.append(HEAP)

    # Transitive closure over the points-to relation.
    slice_roots: set[AbsLoc] = set()
    stack = seeds
    while stack:
        root = stack.pop()
        if root in slice_roots:
            continue
        slice_roots.add(root)
        for tgt_root in adjacency.get(root, ()):
            if tgt_root not in slice_roots and not (
                tgt_root.is_null or tgt_root.is_function
            ):
                stack.append(tgt_root)

    key: list = []
    passthrough: list = []
    for triple in triples:
        sroot = triple[0].root()
        if (
            sroot.kind is LocKind.GLOBAL
            and sroot not in slice_roots
            and sroot not in tainted_roots
        ):
            passthrough.append(triple)
        else:
            key.append(triple)
    return tuple(key), tuple(passthrough), len(slice_roots)
