"""Baseline configurations the paper evaluates against.

Section 5 motivates the precise function-pointer algorithm by
comparing invocation-graph sizes against two naive strategies; this
module packages those runs (used by the ``livc`` study bench) plus a
context-insensitive ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analysis import AnalysisOptions, PointsToAnalysis, analyze
from repro.simple.ir import SimpleProgram


@dataclass
class StrategyComparison:
    """Invocation-graph sizes under the three binding strategies."""

    precise_nodes: int
    all_functions_nodes: int
    address_taken_nodes: int
    precise_targets_per_site: dict[int, int]
    all_functions_count: int
    address_taken_count: int


def run_with_strategy(
    program: SimpleProgram, strategy: str, **kwargs
) -> PointsToAnalysis:
    options = AnalysisOptions(function_pointer_strategy=strategy, **kwargs)
    return analyze(program, options)


def compare_function_pointer_strategies(
    program: SimpleProgram,
) -> StrategyComparison:
    """Run the analysis under all three strategies and report the
    invocation-graph sizes (the Section 6 `livc` study)."""
    from repro.core.funcptr import address_taken_functions
    from repro.core.invocation_graph import indirect_call_sites

    precise = run_with_strategy(program, "precise")
    all_fns = run_with_strategy(program, "all_functions")
    taken = run_with_strategy(program, "address_taken")

    per_site: dict[int, int] = {}
    for fn in program.functions.values():
        for call_site, _ in indirect_call_sites(fn):
            per_site[call_site] = 0
    for node in precise.ig.nodes():
        for call_site, children in node.children.items():
            if call_site in per_site:
                per_site[call_site] = max(per_site[call_site], len(children))

    return StrategyComparison(
        precise_nodes=precise.ig.node_count(),
        all_functions_nodes=all_fns.ig.node_count(),
        address_taken_nodes=taken.ig.node_count(),
        precise_targets_per_site=per_site,
        all_functions_count=len(program.functions),
        address_taken_count=len(address_taken_functions(program)),
    )
