"""Invocation graphs (Section 4, Figure 2).

Every procedure invocation chain from ``main`` is a unique path in the
graph.  Recursion is approximated with matched pairs of *recursive*
and *approximate* nodes: the depth-first construction stops when a
function name repeats on the chain from ``main``; the leaf becomes an
approximate node whose back-edge identifies its recursive partner.

Indirect (function-pointer) call-sites cannot be bound statically, so
the builder leaves them *incomplete*; :mod:`repro.core.funcptr`
completes them during the analysis (Section 5), using exactly the same
recursion check against the ancestor chain.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.pointsto import PointsToSet
from repro.simple.ir import BasicKind, BasicStmt, SimpleFunction, SimpleProgram


class IGNodeKind(enum.Enum):
    ORDINARY = "ordinary"
    RECURSIVE = "recursive"
    APPROXIMATE = "approximate"

    def __init__(self, value: str) -> None:
        self._crc = zlib.crc32(value.encode())

    # Content hash, not the default object-id hash: keeps iteration
    # order of kind-keyed containers identical across runs (see
    # LocKind.__hash__).  Computed once per member: the update path
    # hashes kinds tens of thousands of times per splice.
    def __hash__(self) -> int:
        return self._crc


@dataclass
class IGNode:
    """One procedure invocation context."""

    func: str
    kind: IGNodeKind = IGNodeKind.ORDINARY
    parent: "IGNode | None" = None
    #: call-site id -> callee name -> child node.  Indirect call-sites
    #: may bind several callees; direct sites exactly one.
    children: dict[int, dict[str, "IGNode"]] = field(default_factory=dict)
    #: For APPROXIMATE nodes: the matching RECURSIVE ancestor.
    rec_partner: "IGNode | None" = None

    # Memoization / fixed-point state (Figure 4).
    stored_input: PointsToSet | None = None
    stored_output: PointsToSet | None = None
    #: Ordinary-node memo table: input fingerprint -> output set.  A
    #: bounded generalization of Figure 4's single stored pair
    #: (insertion order is recency order; see repro.core.interproc).
    memo: dict[frozenset, PointsToSet] = field(default_factory=dict)
    pending_inputs: list[PointsToSet] = field(default_factory=list)
    #: True while the recursive fixed point for this node is running.
    in_progress: bool = False

    #: Map information deposited by the mapping process (Section 4.1):
    #: symbolic-name root -> caller location roots it represents.
    map_info: dict | None = None

    def child(self, call_site: int, callee: str) -> "IGNode | None":
        return self.children.get(call_site, {}).get(callee)

    def add_child(self, call_site: int, node: "IGNode") -> "IGNode":
        node.parent = self
        self.children.setdefault(call_site, {})[node.func] = node
        return node

    def ancestors(self) -> Iterator["IGNode"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def path(self) -> list[str]:
        names = [self.func]
        for ancestor in self.ancestors():
            names.append(ancestor.func)
        return list(reversed(names))

    def walk(self) -> Iterator["IGNode"]:
        yield self
        for site_children in self.children.values():
            for child in site_children.values():
                yield from child.walk()

    def __repr__(self) -> str:
        return f"<IGNode {'->'.join(self.path())} {self.kind.value}>"


class InvocationGraph:
    """The invocation graph of a program, rooted at ``main``."""

    def __init__(
        self,
        program: SimpleProgram,
        root_func: str = "main",
        build: bool = True,
    ):
        self.program = program
        self.root_func = root_func
        if root_func not in program.functions:
            raise ValueError(f"program has no '{root_func}' function")
        self.root = IGNode(root_func)
        if build:
            self._build(self.root)

    # -- construction ----------------------------------------------------

    def _build(self, node: IGNode) -> None:
        fn = self.program.functions[node.func]
        for call_site, callee in direct_call_sites(fn):
            if callee not in self.program.functions:
                continue  # external functions have no invocation node
            self.attach_call(node, call_site, callee)

    def attach_call(self, parent: IGNode, call_site: int, callee: str) -> IGNode:
        """Create (or return) the child node for ``callee`` at
        ``call_site`` under ``parent``, performing the recursion check
        against the ancestor chain.  Used both by the static builder
        and by the dynamic function-pointer expansion."""
        existing = parent.child(call_site, callee)
        if existing is not None:
            return existing
        partner = self._find_recursive_ancestor(parent, callee)
        if partner is not None:
            node = IGNode(callee, IGNodeKind.APPROXIMATE, rec_partner=partner)
            partner.kind = IGNodeKind.RECURSIVE
            parent.add_child(call_site, node)
            return node
        node = IGNode(callee)
        parent.add_child(call_site, node)
        self._build(node)
        return node

    @staticmethod
    def _find_recursive_ancestor(parent: IGNode, callee: str) -> IGNode | None:
        if parent.func == callee:
            return parent
        for ancestor in parent.ancestors():
            if ancestor.func == callee:
                return ancestor
        return None

    # -- queries -----------------------------------------------------------

    def nodes(self) -> list[IGNode]:
        return list(self.root.walk())

    def node_count(self) -> int:
        return sum(1 for _ in self.root.walk())

    def count_kind(self, kind: IGNodeKind) -> int:
        return sum(1 for node in self.root.walk() if node.kind is kind)

    def functions_called(self) -> set[str]:
        result = {
            node.func for node in self.root.walk() if node is not self.root
        }
        return result

    def to_dot(self) -> str:
        """Graphviz rendering: tree edges solid, the approximate-to-
        recursive back-edges dashed (the Figure 2 pairing edges)."""
        lines = [
            "digraph invocation_graph {",
            "  node [shape=box, fontname=monospace];",
        ]
        ids: dict[int, str] = {}
        for index, node in enumerate(self.root.walk()):
            ids[id(node)] = f"n{index}"
            label = node.func
            attrs = ""
            if node.kind is IGNodeKind.RECURSIVE:
                label += " (R)"
                attrs = ", peripheries=2"
            elif node.kind is IGNodeKind.APPROXIMATE:
                label += " (A)"
                attrs = ", style=dashed"
            lines.append(f'  {ids[id(node)]} [label="{label}"{attrs}];')
        for node in self.root.walk():
            for site, children in sorted(node.children.items()):
                for child in children.values():
                    lines.append(
                        f"  {ids[id(node)]} -> {ids[id(child)]} "
                        f'[label="s{site}"];'
                    )
        for node in self.root.walk():
            if node.kind is IGNodeKind.APPROXIMATE and node.rec_partner:
                partner_id = ids.get(id(node.rec_partner))
                if partner_id is not None:
                    lines.append(
                        f"  {ids[id(node)]} -> {partner_id} "
                        "[style=dashed, constraint=false];"
                    )
        lines.append("}")
        return "\n".join(lines)

    def render(self) -> str:
        """ASCII rendering of the graph (Figure 2 style)."""
        lines: list[str] = []

        def visit(node: IGNode, depth: int) -> None:
            marker = ""
            if node.kind is IGNodeKind.RECURSIVE:
                marker = " (R)"
            elif node.kind is IGNodeKind.APPROXIMATE:
                marker = " (A)"
                if node.rec_partner is not None:
                    marker += f" ~> {node.rec_partner.func}"
            lines.append("  " * depth + node.func + marker)
            for site in sorted(node.children):
                for child in node.children[site].values():
                    visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)


def direct_call_sites(fn: SimpleFunction) -> list[tuple[int, str]]:
    """(call_site, callee) for every direct call in ``fn``."""
    result = []
    for stmt in fn.iter_stmts():
        if (
            isinstance(stmt, BasicStmt)
            and stmt.kind is BasicKind.CALL
            and stmt.callee is not None
        ):
            assert stmt.call_site is not None
            result.append((stmt.call_site, stmt.callee))
    return result


def indirect_call_sites(fn: SimpleFunction) -> list[tuple[int, str]]:
    """(call_site, function-pointer variable) for indirect calls."""
    result = []
    for stmt in fn.iter_stmts():
        if (
            isinstance(stmt, BasicStmt)
            and stmt.kind is BasicKind.CALL
            and stmt.callee_ptr is not None
        ):
            assert stmt.call_site is not None
            result.append((stmt.call_site, stmt.callee_ptr))
    return result


def call_site_count(program: SimpleProgram) -> int:
    """Number of syntactic call-sites to analyzed functions plus
    indirect call-sites (Table 6's 'call sites' column)."""
    count = 0
    for fn in program.functions.values():
        for stmt in fn.iter_stmts():
            if isinstance(stmt, BasicStmt) and stmt.kind is BasicKind.CALL:
                if stmt.callee is not None and stmt.callee not in program.functions:
                    continue
                count += 1
    return count
