"""Derivation witnesses for points-to facts (the "explain" layer).

When :data:`repro.core.perf.CONFIG.track_provenance` is on, the
analysis records a :class:`Derivation` for every points-to triple as
it is created: which basic-statement rule of Table 1 / Figure 1 fired
(and whether it was a gen, a kill, or a definite-to-possible
weakening), at which statement, in which function, and — for
interprocedural facts — through which invocation-graph path and which
map/unmap step of Figure 3 the fact was imported or exported.  Each
record points at the *parent* derivations it consumed (the facts that
justified the L-/R-location computation, or the callee-side fact an
unmap rewrote), so a full witness path from any triple back to a
source-level assignment can be reconstructed with :func:`witness`.

The recording discipline mirrors the ``repro.obs`` NullTracer
pattern: one module-level *current recorder* (:data:`CURRENT`), which
is the shared :data:`NULL_PROVENANCE` unless an analysis run installed
a live :class:`ProvenanceLog`; every hook site guards with a single
``CURRENT.enabled`` attribute check, so the layer is zero-overhead
when off.  Records are plain tuples identified by their index in
``records``; parents always point backwards, so derivation chains are
acyclic by construction.

Consumers: the ``explain:`` / ``why_possible:`` / ``blame_invisible:``
query verbs (:mod:`repro.service.queries`), the ``analyze --explain``
CLI rendering, the precision dashboard
(:func:`repro.core.statistics.collect_precision`), and the optional
``"provenance"`` section of the store artifact
(:mod:`repro.service.serialize`).  See docs/PROVENANCE.md.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple

# ---------------------------------------------------------------------------
# Rule taxonomy
# ---------------------------------------------------------------------------

#: Implicit NULL initialization of a declared pointer (the paper
#: initializes every pointer the analysis can see to NULL).
RULE_INIT_NULL = "init.null"
#: The basic-statement rule of Figure 1: L x R generation.
RULE_ASSIGN_GEN = "assign.gen"
#: Definite-to-possible weakening of a possible L-location's pairs.
RULE_ASSIGN_WEAKEN = "assign.weaken"
#: Heap allocation (``malloc`` family): the L-locations gain ``heap``.
RULE_ALLOC = "alloc"
#: ``makeDefinitePointsTo`` of Figure 5: the function pointer is bound
#: definitely to one invocable function at an indirect call-site.
RULE_CALL_BIND = "call.bind"
#: Assignment of an unmapped return value to the call's left side.
RULE_CALL_RETURN = "call.retassign"
#: Return-value / side-effect model of an external (libc) function.
RULE_EXTERN = "extern.effect"
#: Map step of Figure 3: a formal inherits its actual's targets.
RULE_MAP_FORMAL = "map.formal"
#: Map step: a relationship reachable from a formal/global is carried
#: into the callee's name space (symbolic names for invisibles).
RULE_MAP_REACH = "map.reach"
#: Map step: pairs through a multi-represented symbolic name weaken.
RULE_MAP_DEGRADE = "map.degrade"
#: Unmap step of Figure 3: strong update of a uniquely-represented
#: caller location from the callee's output.
RULE_UNMAP_STRONG = "unmap.strong"
#: Unmap step: weak update through a multi-represented name.
RULE_UNMAP_WEAK = "unmap.weak"
#: Weakening of surviving caller pairs during a weak unmap update.
RULE_UNMAP_WEAKEN = "unmap.weaken"
#: The ``Merge`` of control-flow paths or calling contexts turned a
#: definite pair into a possible one (d1 ∧ d2 of Table 1).
RULE_MERGE_WEAKEN = "merge.weaken"

#: rule -> kill/gen classification (the Figure 1 vocabulary).
CLASSIFICATION: dict[str, str] = {
    RULE_INIT_NULL: "gen",
    RULE_ASSIGN_GEN: "gen",
    RULE_ALLOC: "gen",
    RULE_CALL_BIND: "gen",
    RULE_CALL_RETURN: "gen",
    RULE_EXTERN: "gen",
    RULE_MAP_FORMAL: "transfer",
    RULE_MAP_REACH: "transfer",
    RULE_UNMAP_STRONG: "transfer",
    RULE_UNMAP_WEAK: "transfer",
    RULE_ASSIGN_WEAKEN: "weaken",
    RULE_MAP_DEGRADE: "weaken",
    RULE_UNMAP_WEAKEN: "weaken",
    RULE_MERGE_WEAKEN: "weaken",
}

#: Rules that may legitimately terminate a witness chain (no parents):
#: a source-level assignment or initialization, an allocation, an
#: indirect-call binding, an external-call model, or a map step whose
#: justification is the call's own argument expression (``&x`` passed
#: directly has no prior fact behind it).
SOURCE_RULES = frozenset(
    {
        RULE_INIT_NULL,
        RULE_ASSIGN_GEN,
        RULE_ALLOC,
        RULE_CALL_BIND,
        RULE_CALL_RETURN,
        RULE_EXTERN,
        RULE_MAP_FORMAL,
    }
)


class Derivation(NamedTuple):
    """One recorded derivation step for the triple ``(src, tgt)``.

    ``parents`` are indexes of earlier records in the producing log
    (always strictly smaller than this record's own index).  ``path``
    is the invocation-graph path active when the fact was created, as
    ``"callee@s<site>"`` segments from the entry point downwards.
    """

    src: object
    tgt: object
    definite: bool
    rule: str
    stmt_id: int | None
    func: str | None
    path: tuple[str, ...]
    parents: tuple[int, ...]
    extra: dict | None

    @property
    def classification(self) -> str:
        return CLASSIFICATION.get(self.rule, "transfer")


#: C-speed constructor for the hot recording path (bypasses the
#: keyword-processing ``Derivation.__new__``).
_make_record = Derivation._make


class ProvenanceLog:
    """Recorder for one analysis run.

    Hot-path contract: call sites must guard every method call with an
    ``if CURRENT.enabled:`` check; the methods themselves assume they
    are only reached when recording is on.
    """

    enabled = True

    __slots__ = (
        "records",
        "latest",
        "symbolic_intros",
        "kill_count",
        "stmt_id",
        "func",
        "path",
        "support",
        "support_stmt",
        "seen_calls",
        "gen_rule",
        "gen_extra",
        "weaken_rule",
        "_frames",
        "_call_extras",
    )

    def __init__(self) -> None:
        #: Append-only list of Derivation records; a record's id is its
        #: index here.
        self.records: list[Derivation] = []
        #: (src, tgt) -> id of the most recent derivation of that pair.
        self.latest: dict[tuple, int] = {}
        #: Introductions of symbolic names (invisible-variable
        #: representatives) with the call path that created them.
        self.symbolic_intros: list[dict] = []
        #: Strong-update deletions (kills remove facts, so they are
        #: counted rather than recorded).
        self.kill_count = 0
        #: Current statement/function context (set per statement).
        self.stmt_id: int | None = None
        self.func: str | None = None
        #: Current invocation-graph path ("callee@s<site>" segments).
        self.path: tuple[str, ...] = ()
        #: Facts consumed while computing the current statement's
        #: L-/R-locations.  Entries are lazy — ``(src, pairs)`` with
        #: ``pairs`` the consumed ``(tgt, definiteness)`` list — or
        #: pre-resolved — ``(None, [(tgt, record id), ...])``.  Record
        #: ids are looked up only when a generated fact actually needs
        #: its parents (most statements generate nothing).
        self.support: list[tuple] = []
        #: Statement the support entries belong to.  Statement dispatch
        #: only updates ``stmt_id``; support from an earlier statement
        #: is detected as stale and dropped lazily here, because
        #: add_support runs far less often than statement dispatch.
        self.support_stmt: int | None = None
        #: Call processings already recorded: (stmt, IG path, node,
        #: input fingerprint) -> output fingerprint.  Loop and
        #: recursion fixed points re-process the same call with the
        #: same input many times; re-processings found here run with
        #: recording suppressed (see interproc.process_call_node).
        self.seen_calls: dict = {}
        #: Rule/extra attached to the next generated facts (overridden
        #: around alloc / return-assignment / external-call sites).
        self.gen_rule: str = RULE_ASSIGN_GEN
        self.gen_extra: dict | None = None
        #: Rule attached to weaken_source flips (overridden by unmap).
        self.weaken_rule: str = RULE_ASSIGN_WEAKEN
        self._frames: list[tuple] = []
        self._call_extras: list[dict] = []

    # -- statement / call context ---------------------------------------

    def set_stmt(self, stmt_id: int | None, func: str | None) -> None:
        self.stmt_id = stmt_id
        self.func = func
        self.support = []
        self.support_stmt = stmt_id

    def push_call(
        self,
        site: int | None,
        callee: str,
        indirect: bool = False,
        fp: str | None = None,
    ) -> None:
        """Enter the dynamic extent of one call (map -> body -> unmap).

        Saves the caller's statement context so the callee's body does
        not clobber it; :meth:`pop_call` restores it.
        """
        self._frames.append(
            (
                self.stmt_id,
                self.func,
                self.path,
                self.support,
                self.support_stmt,
                self.gen_rule,
                self.gen_extra,
                self.weaken_rule,
            )
        )
        self.path = self.path + (f"{callee}@s{site}",)
        extra: dict = {"callee": callee, "site": site}
        if indirect:
            extra["indirect"] = True
            extra["fp"] = fp
        self._call_extras.append(extra)
        self.support = []
        self.support_stmt = None
        self.gen_rule = RULE_ASSIGN_GEN
        self.gen_extra = None
        self.weaken_rule = RULE_ASSIGN_WEAKEN

    def pop_call(self) -> None:
        self._call_extras.pop()
        (
            self.stmt_id,
            self.func,
            self.path,
            self.support,
            self.support_stmt,
            self.gen_rule,
            self.gen_extra,
            self.weaken_rule,
        ) = self._frames.pop()

    def call_extra(self) -> dict | None:
        """Details of the innermost call being processed, if any."""
        return self._call_extras[-1] if self._call_extras else None

    def restore_caller_stmt(self) -> None:
        """Reset the statement context to the enclosing call statement
        (used by unmap: its records belong to the call site, not to
        whatever statement the callee's body ended on)."""
        if self._frames:
            frame = self._frames[-1]
            self.stmt_id = frame[0]
            self.func = frame[1]

    # -- recording -------------------------------------------------------

    def class_counts(self) -> dict[str, int]:
        """Figure 1 kill/gen classification counters, computed on
        demand (keeping them out of the hot recording path)."""
        counts = {"gen": 0, "kill": self.kill_count, "weaken": 0,
                  "transfer": 0}
        classify = CLASSIFICATION.get
        for record in self.records:
            counts[classify(record[3], "transfer")] += 1
        return counts

    def record(
        self,
        src,
        tgt,
        definite: bool,
        rule: str,
        parents: tuple[int, ...] = (),
        extra: dict | None = None,
    ) -> int:
        records = self.records
        latest = self.latest
        key = (src, tgt)
        rid = latest.get(key)
        stmt_id = self.stmt_id
        path = self.path
        if rid is not None:
            # Fixed-point iterations re-derive the same fact through
            # the same step over and over; an identical re-derivation
            # adds nothing to the witness, so keep the existing record.
            prev = records[rid]
            if (
                prev[4] == stmt_id
                and prev[2] == definite
                and prev[3] == rule
                and prev[6] == path
                and prev[5] == self.func
            ):
                return rid
        rid = len(records)
        records.append(
            _make_record(
                (src, tgt, definite, rule, stmt_id, self.func, path,
                 parents, extra)
            )
        )
        latest[key] = rid
        return rid

    def record_init(self, src, tgt, definite: bool, func: str | None) -> int:
        """A NULL-initialization fact (no statement of its own)."""
        saved_stmt, saved_func = self.stmt_id, self.func
        self.stmt_id, self.func = None, func
        try:
            return self.record(src, tgt, definite, RULE_INIT_NULL)
        finally:
            self.stmt_id, self.func = saved_stmt, saved_func

    def record_gen(self, src, tgt, definite: bool) -> int:
        """A generated pair of the current assignment; parents are the
        support facts that justified either side's location set."""
        return self.record(
            src,
            tgt,
            definite,
            self.gen_rule,
            self.support_parents(src, tgt),
            self.gen_extra,
        )

    def record_weaken(self, src, tgt, rule: str | None = None) -> int:
        """A definite pair flipped to possible; chained to the pair's
        previous derivation.  (Open-coded rather than delegating to
        :meth:`record` — one ``latest`` lookup serves both the parent
        link and the duplicate check; weakening is the hottest rule.)"""
        if rule is None:
            rule = self.weaken_rule
        records = self.records
        latest = self.latest
        key = (src, tgt)
        rid = latest.get(key)
        if rid is not None:
            prev = records[rid]
            if not prev[2]:
                # The pair's current derivation is already possible —
                # a further weakening changes nothing, and the oldest
                # weakening is the one ``why_possible`` wants anyway.
                return rid
            parents: tuple[int, ...] = (rid,)
        else:
            parents = ()
        rid = len(records)
        records.append(
            _make_record(
                (src, tgt, False, rule, self.stmt_id, self.func,
                 self.path, parents, None)
            )
        )
        latest[key] = rid
        return rid

    def record_kill(self, src, count: int) -> None:
        """Strong update removed ``count`` pairs sourced at ``src``
        (kills delete facts, so they are counted, not chained)."""
        self.kill_count += count

    def record_symbolic(self, symbolic, represents, via) -> None:
        """A symbolic name was introduced to represent an invisible
        caller location during the map step."""
        self.symbolic_intros.append(
            {
                "name": str(symbolic),
                "base": symbolic.base,
                "func": symbolic.func,
                "represents": str(represents),
                "via": str(via),
                "stmt_id": self.stmt_id,
                "path": list(self.path),
            }
        )

    # -- support (facts consumed by the current statement) ---------------

    def add_support(self, src, pairs: Iterable) -> None:
        """Note that the pairs ``(src -> tgt)`` were consumed while
        resolving a location set for the current statement."""
        if self.support_stmt != self.stmt_id:
            self.support = []
            self.support_stmt = self.stmt_id
        self.support.append((src, pairs))

    def add_resolved_support(self, entries: Iterable) -> None:
        """Support whose record ids are already known — ``(justified
        target location, record id)`` pairs (used for unmapped return
        values, whose callee-side records are in hand)."""
        if self.support_stmt != self.stmt_id:
            self.support = []
            self.support_stmt = self.stmt_id
        self.support.append((None, list(entries)))

    def support_parents(self, *locs) -> tuple[int, ...]:
        """Support record ids justifying any of ``locs`` (deduped,
        in first-seen order)."""
        support = self.support
        if not support or self.support_stmt != self.stmt_id:
            return ()
        latest = self.latest
        out: dict[int, None] = {}
        for src, pairs in support:
            if src is None:
                for tgt, rid in pairs:
                    if tgt in locs:
                        out[rid] = None
            else:
                for tgt, _definiteness in pairs:
                    if tgt in locs:
                        rid = latest.get((src, tgt))
                        if rid is not None:
                            out[rid] = None
        return tuple(out)


class NullProvenance:
    """Disabled recorder; every hook reduces to the ``enabled`` check.

    The methods exist (as no-ops) purely defensively — correct call
    sites never reach them.
    """

    enabled = False
    kill_count = 0

    def class_counts(self) -> dict[str, int]:
        return {"gen": 0, "kill": 0, "weaken": 0, "transfer": 0}

    def set_stmt(self, stmt_id, func) -> None:
        pass

    def push_call(self, site, callee, indirect=False, fp=None) -> None:
        pass

    def pop_call(self) -> None:
        pass

    def call_extra(self) -> None:
        return None

    def restore_caller_stmt(self) -> None:
        pass

    def record(self, src, tgt, definite, rule, parents=(), extra=None) -> int:
        return -1

    def record_init(self, src, tgt, definite, func) -> int:
        return -1

    def record_gen(self, src, tgt, definite) -> int:
        return -1

    def record_weaken(self, src, tgt, rule=None) -> int:
        return -1

    def record_kill(self, src, count) -> None:
        pass

    def record_symbolic(self, symbolic, represents, via) -> None:
        pass

    def add_support(self, src, pairs) -> None:
        pass

    def add_resolved_support(self, entries) -> None:
        pass

    def support_parents(self, *locs) -> tuple:
        return ()


#: The shared disabled recorder.
NULL_PROVENANCE = NullProvenance()

#: The current recorder, consulted by every hook site.  Installed by
#: :meth:`repro.core.analysis.Analyzer.run` for the extent of a run
#: when ``perf.CONFIG.track_provenance`` is on.
CURRENT: ProvenanceLog | NullProvenance = NULL_PROVENANCE


def install(log: ProvenanceLog | None):
    """Install ``log`` as the current recorder (None restores the null
    recorder); returns the previously-installed one."""
    global CURRENT
    previous = CURRENT
    CURRENT = log if log is not None else NULL_PROVENANCE
    return previous


# ---------------------------------------------------------------------------
# Witness reconstruction (shared by live and decoded logs)
# ---------------------------------------------------------------------------

#: Safety bound on witness length (chains are acyclic, but re-derived
#: facts in loop fixed points can make them long and repetitive).
MAX_WITNESS_STEPS = 128


def witness(log, src, tgt, max_steps: int = MAX_WITNESS_STEPS) -> list:
    """The primary-parent derivation chain of ``(src, tgt)``, newest
    first: ``[(record id, Derivation), ...]``.

    ``log`` is anything with ``records`` (indexable Derivations) and
    ``latest`` (pair -> id); both :class:`ProvenanceLog` and the
    decoded form from :mod:`repro.service.serialize` qualify.  Only
    the first parent of each record is followed (it is the
    highest-signal justification); remaining parents stay available on
    each step for callers that want the full DAG.
    """
    rid = log.latest.get((src, tgt))
    steps: list = []
    seen: set[int] = set()
    records = log.records
    while rid is not None and rid not in seen and len(steps) < max_steps:
        seen.add(rid)
        record = records[rid]
        steps.append((rid, record))
        rid = record.parents[0] if record.parents else None
    return steps


def chain_depth(log, key: tuple, max_steps: int = MAX_WITNESS_STEPS) -> int:
    """Length of the primary-parent chain behind ``latest[key]``."""
    rid = log.latest.get(key)
    depth = 0
    seen: set[int] = set()
    records = log.records
    while rid is not None and rid not in seen and depth < max_steps:
        seen.add(rid)
        depth += 1
        record = records[rid]
        rid = record.parents[0] if record.parents else None
    return depth


def first_weakening(log, src, tgt) -> tuple | None:
    """The earliest D→P weakening on the witness chain of ``(src,
    tgt)``: ``(record id, Derivation)``, or None when the chain never
    weakens (the fact was born possible at its source).

    A step weakens when its rule is classified ``weaken`` or when a
    possible fact's primary parent was definite (e.g. a weak unmap
    update of a definite callee fact).
    """
    chain = witness(log, src, tgt)
    weakening = None
    records = log.records
    for rid, record in chain:
        if CLASSIFICATION.get(record.rule) == "weaken":
            weakening = (rid, record)
            continue
        if not record.definite and record.parents:
            parent = records[record.parents[0]]
            if parent.definite:
                weakening = (rid, record)
    return weakening
