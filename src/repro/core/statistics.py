"""Metric collectors for the paper's evaluation (Tables 2-6).

Each ``collect_*`` function takes a finished
:class:`~repro.core.analysis.PointsToAnalysis` and returns a row
object mirroring one line of the corresponding table.  Pairs whose
target is NULL are excluded throughout, matching the paper's counting
rule ("points-to relationships contributed by [NULL initialization]
are not counted in the statistics").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.core.analysis import PointsToAnalysis
from repro.core.invocation_graph import IGNodeKind, call_site_count
from repro.core.locations import AbsLoc, LocKind
from repro.core.pointsto import D
from repro.core.provenance import chain_depth
from repro.core.transforms import (
    IndirectRef,
    find_pointer_replacements,
    indirect_references,
)
from repro.simple.ir import BasicStmt


# ---------------------------------------------------------------------------
# Table 2 — benchmark characteristics
# ---------------------------------------------------------------------------


@dataclass
class Table2Row:
    benchmark: str
    lines: int
    simple_stmts: int
    min_vars: int
    max_vars: int
    description: str = ""


def collect_table2(
    analysis: PointsToAnalysis, name: str, description: str = ""
) -> Table2Row:
    program = analysis.program
    per_function_vars: list[int] = []
    for fn in program.functions.values():
        locations: set[AbsLoc] = set()
        for stmt in fn.iter_stmts():
            info = analysis.at_stmt(stmt.stmt_id)
            if info is None:
                continue
            for src, tgt, _ in info.triples():
                locations.add(src)
                if not tgt.is_null:
                    locations.add(tgt)
        declared = len(fn.params) + len(fn.local_types)
        per_function_vars.append(max(len(locations), declared))
    if not per_function_vars:
        per_function_vars = [0]
    return Table2Row(
        benchmark=name,
        lines=program.source_lines,
        simple_stmts=program.count_basic_stmts(),
        min_vars=min(per_function_vars),
        max_vars=max(per_function_vars),
        description=description,
    )


# ---------------------------------------------------------------------------
# Table 3 — points-to statistics for indirect references
# ---------------------------------------------------------------------------


@dataclass
class FormPair:
    """Counts split by reference form: ``*x``-style vs ``x[i][j]``-style."""

    deref: int = 0
    array: int = 0

    def add(self, form: str) -> None:
        if form == "array":
            self.array += 1
        else:
            self.deref += 1

    @property
    def total(self) -> int:
        return self.deref + self.array

    def __str__(self) -> str:
        return f"{self.deref}/{self.array}"


@dataclass
class Table3Row:
    benchmark: str
    one_definite: FormPair = field(default_factory=FormPair)
    one_possible: FormPair = field(default_factory=FormPair)
    two: FormPair = field(default_factory=FormPair)
    three: FormPair = field(default_factory=FormPair)
    four_plus: FormPair = field(default_factory=FormPair)
    zero: FormPair = field(default_factory=FormPair)
    indirect_refs: int = 0
    scalar_replaceable: int = 0
    pairs_to_stack: int = 0
    pairs_to_heap: int = 0

    @property
    def pairs_total(self) -> int:
        return self.pairs_to_stack + self.pairs_to_heap

    @property
    def average(self) -> float:
        if self.indirect_refs == 0:
            return 0.0
        return self.pairs_total / self.indirect_refs

    @property
    def single_definite_fraction(self) -> float:
        if self.indirect_refs == 0:
            return 0.0
        return self.one_definite.total / self.indirect_refs

    @property
    def single_target_fraction(self) -> float:
        """Fraction with a single non-NULL target (the paper's 90.76%
        'should not be NULL when dereferenced' figure)."""
        if self.indirect_refs == 0:
            return 0.0
        singles = self.one_definite.total + self.one_possible.total
        return singles / self.indirect_refs


def collect_table3(analysis: PointsToAnalysis, name: str) -> Table3Row:
    row = Table3Row(benchmark=name)
    refs = indirect_references(analysis)
    row.indirect_refs = len(refs)
    row.scalar_replaceable = len(find_pointer_replacements(analysis))
    for ref in refs:
        bucket = _resolution_bucket(ref)
        bucket_field = {
            "1D": row.one_definite,
            "1P": row.one_possible,
            "2": row.two,
            "3": row.three,
            "4+": row.four_plus,
            "0": row.zero,
        }[bucket]
        bucket_field.add(ref.form)
        for target, _ in ref.targets:
            if target.is_heap:
                row.pairs_to_heap += 1
            else:
                row.pairs_to_stack += 1
    return row


def _resolution_bucket(ref: IndirectRef) -> str:
    count = len(ref.targets)
    if count == 0:
        return "0"
    if count == 1:
        return "1D" if ref.targets[0][1] is D else "1P"
    if count == 2:
        return "2"
    if count == 3:
        return "3"
    return "4+"


# ---------------------------------------------------------------------------
# Table 4 — categorization of pairs used by indirect references
# ---------------------------------------------------------------------------


@dataclass
class Table4Row:
    benchmark: str
    from_counts: dict[str, int] = field(
        default_factory=lambda: {"lo": 0, "gl": 0, "fp": 0, "sy": 0}
    )
    to_counts: dict[str, int] = field(
        default_factory=lambda: {"lo": 0, "gl": 0, "fp": 0, "sy": 0}
    )


_KIND_CATEGORY = {
    LocKind.LOCAL: "lo",
    LocKind.GLOBAL: "gl",
    LocKind.PARAM: "fp",
    LocKind.SYMBOLIC: "sy",
}


def collect_table4(analysis: PointsToAnalysis, name: str) -> Table4Row:
    """From/to categories of stack-targeted pairs used by indirect
    references.  The *from* side is the dereferenced pointer's
    location; the *to* side is the pointed-to stack location."""
    row = Table4Row(benchmark=name)
    for ref in indirect_references(analysis):
        env = analysis.env(ref.func)
        source = env.var_loc(ref.ref.base)
        for target, _ in ref.targets:
            if target.is_heap:
                continue
            from_cat = _KIND_CATEGORY.get(source.kind)
            to_cat = _KIND_CATEGORY.get(target.kind)
            if target.is_function:
                to_cat = "gl"  # function addresses are static (global)
            if from_cat:
                row.from_counts[from_cat] += 1
            if to_cat:
                row.to_counts[to_cat] += 1
    return row


# ---------------------------------------------------------------------------
# Table 5 — general points-to statistics
# ---------------------------------------------------------------------------


@dataclass
class Table5Row:
    benchmark: str
    stack_to_stack: int = 0
    stack_to_heap: int = 0
    heap_to_heap: int = 0
    heap_to_stack: int = 0
    statements: int = 0
    max_per_stmt: int = 0

    @property
    def total(self) -> int:
        return (
            self.stack_to_stack
            + self.stack_to_heap
            + self.heap_to_heap
            + self.heap_to_stack
        )

    @property
    def average(self) -> float:
        if self.statements == 0:
            return 0.0
        return self.total / self.statements


def collect_table5(analysis: PointsToAnalysis, name: str) -> Table5Row:
    """Sum of pairs valid at each statement of the simplified program,
    classified by source/target memory region (NULL pairs excluded;
    function-location targets count as stack — they are named static
    locations)."""
    row = Table5Row(benchmark=name)
    for fn in analysis.program.functions.values():
        for stmt in fn.iter_stmts():
            if not isinstance(stmt, BasicStmt):
                continue
            info = analysis.at_stmt(stmt.stmt_id)
            if info is None:
                continue
            row.statements += 1
            valid = 0
            for src, tgt, _ in info.triples():
                if tgt.is_null:
                    continue
                valid += 1
                if src.is_heap and tgt.is_heap:
                    row.heap_to_heap += 1
                elif src.is_heap:
                    row.heap_to_stack += 1
                elif tgt.is_heap:
                    row.stack_to_heap += 1
                else:
                    row.stack_to_stack += 1
            row.max_per_stmt = max(row.max_per_stmt, valid)
    return row


# ---------------------------------------------------------------------------
# Table 6 — invocation graph statistics
# ---------------------------------------------------------------------------


@dataclass
class Table6Row:
    benchmark: str
    ig_nodes: int = 0
    call_sites: int = 0
    functions: int = 0
    recursive_nodes: int = 0
    approximate_nodes: int = 0

    @property
    def avg_per_call_site(self) -> float:
        """(nodes - 1) / call-sites — each non-root node is one
        invocation of some call-site."""
        if self.call_sites == 0:
            return 0.0
        return (self.ig_nodes - 1) / self.call_sites

    @property
    def avg_per_function(self) -> float:
        if self.functions == 0:
            return 0.0
        return self.ig_nodes / self.functions


def collect_table6(analysis: PointsToAnalysis, name: str) -> Table6Row:
    ig = analysis.ig
    return Table6Row(
        benchmark=name,
        ig_nodes=ig.node_count(),
        call_sites=call_site_count(analysis.program),
        functions=len(ig.functions_called()),
        recursive_nodes=ig.count_kind(IGNodeKind.RECURSIVE),
        approximate_nodes=ig.count_kind(IGNodeKind.APPROXIMATE),
    )


# ---------------------------------------------------------------------------
# Precision dashboard (definite/possible ratios, invisible variables,
# derivation-depth profile)
# ---------------------------------------------------------------------------


@dataclass
class FunctionPrecision:
    """Definite/possible pair counts over one function's statements.

    Counted like Table 5 — every non-NULL pair valid at every basic
    statement — so a pair that stays definite across ten statements
    weighs ten, which is exactly the exposure an optimizer sees."""

    function: str
    definite: int = 0
    possible: int = 0
    invisible_vars: int = 0  # distinct symbolic names in this scope

    @property
    def pairs(self) -> int:
        return self.definite + self.possible

    @property
    def definite_ratio(self) -> float:
        pairs = self.pairs
        return self.definite / pairs if pairs else 0.0

    def as_dict(self) -> dict:
        return {
            "function": self.function,
            "definite": self.definite,
            "possible": self.possible,
            "definite_ratio": round(self.definite_ratio, 4),
            "invisible_vars": self.invisible_vars,
        }


@dataclass
class PrecisionRow:
    """The precision dashboard of one analysis run.

    The structural half (per-function definite/possible ratios,
    invisible-variable counts, approximate/recursive invocation-graph
    nodes) is always available; the derivation half (Figure 1
    kill/gen/weaken classification and the witness-depth profile)
    needs the run's :class:`~repro.core.provenance.ProvenanceLog` and
    is ``None`` without one.
    """

    benchmark: str
    functions: list[FunctionPrecision] = field(default_factory=list)
    invisible_vars: int = 0
    approximate_nodes: int = 0
    recursive_nodes: int = 0
    #: Provenance-backed (None when the run did not record):
    records: int | None = None
    class_counts: dict | None = None
    kill_count: int | None = None
    #: Exact depth -> chain count over every live (src, tgt) pair.
    depth_counts: dict[int, int] | None = None
    #: ``repro.obs.Histogram`` summary of the same depths (count /
    #: mean / min / max plus the log-scale buckets).
    depth_histogram: dict | None = None

    @property
    def definite(self) -> int:
        return sum(fn.definite for fn in self.functions)

    @property
    def possible(self) -> int:
        return sum(fn.possible for fn in self.functions)

    @property
    def definite_ratio(self) -> float:
        total = self.definite + self.possible
        return self.definite / total if total else 0.0

    def as_dict(self) -> dict:
        result = {
            "benchmark": self.benchmark,
            "functions": [fn.as_dict() for fn in self.functions],
            "definite": self.definite,
            "possible": self.possible,
            "definite_ratio": round(self.definite_ratio, 4),
            "invisible_vars": self.invisible_vars,
            "approximate_nodes": self.approximate_nodes,
            "recursive_nodes": self.recursive_nodes,
        }
        if self.records is not None:
            result["records"] = self.records
            result["class_counts"] = self.class_counts
            result["kill_count"] = self.kill_count
            result["depth_counts"] = {
                str(depth): count
                for depth, count in sorted(self.depth_counts.items())
            }
            result["depth_histogram"] = self.depth_histogram
        return result


def collect_precision(analysis: PointsToAnalysis, name: str) -> PrecisionRow:
    """The precision dashboard: how definite the result is, where the
    invisible-variable abstraction concentrates, and — when the run
    recorded provenance — how deep the derivation chains run."""
    row = PrecisionRow(benchmark=name)
    for fn_name in sorted(analysis.program.functions):
        fn = analysis.program.functions[fn_name]
        entry = FunctionPrecision(function=fn_name)
        symbolics: set[AbsLoc] = set()
        for stmt in fn.iter_stmts():
            if not isinstance(stmt, BasicStmt):
                continue
            info = analysis.at_stmt(stmt.stmt_id)
            if info is None:
                continue
            for src, tgt, definiteness in info.triples():
                if tgt.is_null:
                    continue
                if definiteness is D:
                    entry.definite += 1
                else:
                    entry.possible += 1
                for loc in (src, tgt):
                    if loc.kind is LocKind.SYMBOLIC:
                        symbolics.add(loc)
        entry.invisible_vars = len(symbolics)
        row.functions.append(entry)
    row.invisible_vars = sum(fn.invisible_vars for fn in row.functions)
    ig = analysis.ig
    row.approximate_nodes = ig.count_kind(IGNodeKind.APPROXIMATE)
    row.recursive_nodes = ig.count_kind(IGNodeKind.RECURSIVE)

    log = getattr(analysis, "provenance", None)
    if log is not None:
        row.records = len(log.records)
        row.class_counts = log.class_counts()
        row.kill_count = log.kill_count
        depth_counts: dict[int, int] = {}
        histogram = obs.Histogram()
        for key in log.latest:
            depth = chain_depth(log, key)
            depth_counts[depth] = depth_counts.get(depth, 0) + 1
            histogram.observe(float(depth))
        row.depth_counts = depth_counts
        row.depth_histogram = histogram.as_dict()
    return row


# ---------------------------------------------------------------------------
# Performance counters (memo tables, recursion truncation, set sizes)
# ---------------------------------------------------------------------------


@dataclass
class QueryStats:
    """Per-session demand-query counters (one
    :class:`~repro.service.queries.QuerySession` each), surfaced
    through :func:`collect_perf` alongside the analysis counters."""

    counts: dict[str, int] = field(default_factory=dict)

    def record(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "counts": dict(sorted(self.counts.items())),
        }


@dataclass
class PerfRow:
    """Per-run performance counters: invocation-graph memo-table
    traffic plus the points-to-set size peak, reported alongside the
    wall-clock timings of ``benchmarks/bench_perf.py``.  When the run
    served demand queries or consulted the result store, those
    counters ride along too."""

    benchmark: str
    statements: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    memo_evictions: int = 0
    recursion_truncations: int = 0
    peak_triples: int = 0
    #: Per-function {hits, misses, hit_rate} over that function's
    #: invocation nodes (``MemoStats.per_function_rates()``).
    memo_per_function: dict = field(default_factory=dict)
    #: Slice-keyed memo traffic: lookups that used a reachable-slice
    #: key, how many hit, and the summed key/passthrough pair counts
    #: (from which the average slice size falls out).
    slice_hits: int = 0
    slice_lookups: int = 0
    slice_key_pairs: int = 0
    slice_passthrough_pairs: int = 0
    #: ``QueryStats.as_dict()`` of the serving session, when any.
    query_stats: dict | None = None
    #: ``StoreStats.as_dict()`` of the result store, when one was used.
    store_stats: dict | None = None
    #: ``Tracer.snapshot()`` of the run's tracer, when one was active.
    #: Never populated implicitly: the serialized store payload embeds
    #: a PerfRow, and artifacts must stay byte-identical with tracing
    #: on or off — callers opt in by passing ``tracer=``.
    metrics: dict | None = None
    #: Table 3 headline precision fractions, opt-in for the same
    #: byte-identity reason (callers pass ``table3=``; the benchmark
    #: report does, serialized store summaries do not).
    single_definite_fraction: float | None = None
    single_target_fraction: float | None = None

    @property
    def memo_lookups(self) -> int:
        return self.memo_hits + self.memo_misses

    @property
    def memo_hit_rate(self) -> float:
        lookups = self.memo_lookups
        return self.memo_hits / lookups if lookups else 0.0

    @property
    def slice_hit_rate(self) -> float:
        return (
            self.slice_hits / self.slice_lookups if self.slice_lookups else 0.0
        )

    @property
    def avg_slice_key_pairs(self) -> float:
        return (
            self.slice_key_pairs / self.slice_lookups
            if self.slice_lookups
            else 0.0
        )

    @property
    def avg_slice_passthrough_pairs(self) -> float:
        return (
            self.slice_passthrough_pairs / self.slice_lookups
            if self.slice_lookups
            else 0.0
        )

    def as_dict(self) -> dict:
        result = {
            "benchmark": self.benchmark,
            "statements": self.statements,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "memo_evictions": self.memo_evictions,
            "memo_hit_rate": round(self.memo_hit_rate, 4),
            "memo_per_function": self.memo_per_function,
            "slice": {
                "hits": self.slice_hits,
                "lookups": self.slice_lookups,
                "hit_rate": round(self.slice_hit_rate, 4),
                "avg_key_pairs": round(self.avg_slice_key_pairs, 2),
                "avg_passthrough_pairs": round(
                    self.avg_slice_passthrough_pairs, 2
                ),
            },
            "recursion_truncations": self.recursion_truncations,
            "peak_triples": self.peak_triples,
        }
        if self.query_stats is not None:
            result["queries"] = self.query_stats
        if self.store_stats is not None:
            result["store"] = self.store_stats
        if self.metrics is not None:
            result["metrics"] = self.metrics
        if self.single_definite_fraction is not None:
            result["single_definite_fraction"] = round(
                self.single_definite_fraction, 4
            )
        if self.single_target_fraction is not None:
            result["single_target_fraction"] = round(
                self.single_target_fraction, 4
            )
        return result


def collect_perf(
    analysis: PointsToAnalysis,
    name: str,
    queries: QueryStats | None = None,
    store=None,
    tracer=None,
    table3: Table3Row | None = None,
) -> PerfRow:
    """Performance counters of one run.

    Accepts a live :class:`~repro.core.analysis.PointsToAnalysis` or a
    decoded cached result (which has no program — its statement count
    travels in the payload).  ``queries`` is a session's
    :class:`QueryStats`; ``store`` a service
    :class:`~repro.service.store.ResultStore` (anything exposing
    ``stats.as_dict()``); ``tracer`` a
    :class:`~repro.obs.Tracer` whose counter/gauge/histogram snapshot
    should ride along in the row's ``metrics`` block; ``table3`` the
    run's :class:`Table3Row`, from which the headline precision
    fractions (single-definite, single-target) ride along in the
    benchmark report.
    """
    stats = analysis.stats
    peak = max(
        (len(info) for info in analysis.point_info.values() if info is not None),
        default=0,
    )
    program = getattr(analysis, "program", None)
    if program is not None:
        statements = program.count_basic_stmts()
    else:
        statements = getattr(analysis, "statements", 0)
    return PerfRow(
        benchmark=name,
        statements=statements,
        memo_hits=stats.hits,
        memo_misses=stats.misses,
        memo_evictions=stats.evictions,
        recursion_truncations=stats.recursion_truncations,
        peak_triples=peak,
        memo_per_function=stats.per_function_rates(),
        slice_hits=stats.slice_hits,
        slice_lookups=stats.slice_lookups,
        slice_key_pairs=stats.slice_key_pairs,
        slice_passthrough_pairs=stats.slice_passthrough_pairs,
        query_stats=queries.as_dict() if queries is not None else None,
        store_stats=(
            store.stats.as_dict() if store is not None else None
        ),
        metrics=(
            tracer.snapshot()
            if tracer is not None and tracer.enabled
            else None
        ),
        single_definite_fraction=(
            table3.single_definite_fraction if table3 is not None else None
        ),
        single_target_fraction=(
            table3.single_target_fraction if table3 is not None else None
        ),
    )


# ---------------------------------------------------------------------------
# Suite-level summary (the headline percentages of Section 6)
# ---------------------------------------------------------------------------


@dataclass
class SuiteSummary:
    total_indirect_refs: int = 0
    total_pairs_used: int = 0
    total_one_definite: int = 0
    total_single_target: int = 0
    total_scalar_replaceable: int = 0
    total_pairs_to_heap: int = 0

    @property
    def overall_average(self) -> float:
        if self.total_indirect_refs == 0:
            return 0.0
        return self.total_pairs_used / self.total_indirect_refs

    @property
    def pct_definite_single(self) -> float:
        if self.total_indirect_refs == 0:
            return 0.0
        return 100.0 * self.total_one_definite / self.total_indirect_refs

    @property
    def pct_scalar_replaceable(self) -> float:
        if self.total_indirect_refs == 0:
            return 0.0
        return 100.0 * self.total_scalar_replaceable / self.total_indirect_refs

    @property
    def pct_single_target(self) -> float:
        if self.total_indirect_refs == 0:
            return 0.0
        return 100.0 * self.total_single_target / self.total_indirect_refs

    @property
    def pct_heap_pairs(self) -> float:
        if self.total_pairs_used == 0:
            return 0.0
        return 100.0 * self.total_pairs_to_heap / self.total_pairs_used


def summarize_suite(rows: list[Table3Row]) -> SuiteSummary:
    summary = SuiteSummary()
    for row in rows:
        summary.total_indirect_refs += row.indirect_refs
        summary.total_pairs_used += row.pairs_total
        summary.total_one_definite += row.one_definite.total
        summary.total_single_target += (
            row.one_definite.total + row.one_possible.total
        )
        summary.total_scalar_replaceable += row.scalar_replaceable
        summary.total_pairs_to_heap += row.pairs_to_heap
    return summary
