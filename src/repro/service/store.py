"""On-disk, content-addressed result store.

Results are keyed by ``sha256(source, AnalysisOptions, FORMAT_VERSION)``
— the *content* of the request, not the file path — so renaming a file
still hits, editing a file misses, and bumping the payload format
invalidates everything without any migration logic.

Layout (all under one root directory)::

    <root>/objects/<k[:2]>/<k>.json    one canonical-JSON payload per key

Writes are atomic (temp file + ``os.replace``), so concurrent batch
workers can race on the same key safely: both compute the same bytes
and the last rename wins.  Corrupt or version-skewed payloads are
treated as misses and overwritten.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro import obs
from repro.core import perf
from repro.core.analysis import AnalysisOptions, analyze_source
from repro.service.serialize import (
    FORMAT_VERSION,
    DecodedAnalysis,
    canonical_json,
    decode_analysis,
    encode_analysis,
)

#: Environment variable overriding the default store root.
STORE_ENV = "REPRO_PTA_STORE"


def default_store_root() -> Path:
    env = os.environ.get(STORE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-pta"


@dataclass
class StoreStats:
    """Per-store-instance traffic counters."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    invalid: int = 0  # corrupt / version-skewed payloads dropped

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        result = asdict(self)
        result["hit_rate"] = round(self.hit_rate, 4)
        return result


@dataclass
class ResultStore:
    """A content-addressed cache of encoded analysis results."""

    root: Path = field(default_factory=default_store_root)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.stats = StoreStats()

    # -- keys -------------------------------------------------------------

    @staticmethod
    def key_for(source: str, options: AnalysisOptions | None = None) -> str:
        """The content address of one (source, options) request.

        When provenance tracking is on, the key carries a marker:
        provenance-enabled artifacts embed an extra payload section, so
        they must not satisfy (or be overwritten by) plain requests for
        the same source.  The marker is *omitted* — not ``False`` —
        when tracking is off, keeping every pre-provenance cache entry
        valid.
        """
        options = options or AnalysisOptions()
        request: dict = {
            "source": source,
            "options": asdict(options),
            "format_version": FORMAT_VERSION,
        }
        if perf.CONFIG.track_provenance:
            request["provenance"] = True
        return hashlib.sha256(
            json.dumps(
                request, sort_keys=True, separators=(",", ":")
            ).encode()
        ).hexdigest()

    def path_for(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    # -- raw object access -------------------------------------------------

    def has(self, key: str) -> bool:
        return self.path_for(key).exists()

    def get(self, key: str) -> DecodedAnalysis | None:
        """The decoded payload under ``key``, or None on miss."""
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            obs.count("store.misses")
            return None
        with obs.timed("store.decode"):
            try:
                decoded = decode_analysis(raw)
            except (ValueError, KeyError, TypeError, IndexError):
                # Corrupt or stale-format payload: drop it, report a miss.
                self.stats.invalid += 1
                self.stats.misses += 1
                obs.count("store.invalid")
                obs.count("store.misses")
                try:
                    path.unlink()
                except OSError:
                    pass
                return None
        self.stats.hits += 1
        obs.count("store.hits")
        return decoded

    def put(self, key: str, payload: dict) -> Path:
        """Atomically write ``payload`` under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = canonical_json(payload)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.puts += 1
        if obs.active():
            obs.count("store.puts")
            obs.count("store.put_bytes", len(data))
        return path

    # -- maintenance -------------------------------------------------------

    def keys(self) -> list[str]:
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(p.stem for p in objects.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every stored object; returns the number removed."""
        removed = 0
        for key in self.keys():
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed

    # -- the analyze-or-hit entry point -----------------------------------

    def load_or_analyze(
        self,
        source: str,
        options: AnalysisOptions | None = None,
        name: str = "<source>",
        refresh: bool = False,
    ):
        """Return ``(analysis_like, hit)`` for a source text.

        On a hit the cached :class:`DecodedAnalysis` is returned and no
        parsing or analysis happens at all.  On a miss the source is
        analyzed, encoded, stored, and the *live*
        :class:`~repro.core.analysis.PointsToAnalysis` is returned
        (queries accept either form).  ``refresh=True`` forces a miss.
        """
        options = options or AnalysisOptions()
        key = self.key_for(source, options)
        if not refresh:
            cached = self.get(key)
            if cached is not None:
                return cached, True
        else:
            self.stats.misses += 1
            obs.count("store.misses")
        analysis = analyze_source(source, options, filename=name)
        with obs.timed("store.encode"):
            payload = encode_analysis(analysis, name=name, source=source)
        self.put(key, payload)
        return analysis, False
