"""Content-addressed result store over a pluggable backend.

Results are keyed by ``sha256(source, AnalysisOptions, FORMAT_VERSION)``
— the *content* of the request, not the file path — so renaming a file
still hits, editing a file misses, and bumping the payload format
invalidates everything without any migration logic.

The store owns key computation, canonical encoding/decoding, dropping
corrupt payloads, and traffic counters; raw object IO goes through a
:class:`~repro.service.backends.StoreBackend` selected by URL
(``file:…``, ``memory://``, ``sqlite:…``, or the tiered
``memory+file:…`` read-through composition — see
:mod:`repro.service.backends`).  The default is the filesystem backend
with the historical layout (``<root>/objects/<k[:2]>/<k>.json``,
atomic writes), byte- and key-compatible with existing on-disk stores.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path

from repro import obs
from repro.core import perf
from repro.core.analysis import AnalysisOptions, analyze_source
from repro.core.incremental import (
    SeedBank,
    bank_from_records,
    capture_records,
    closure_members,
    function_fingerprints,
    globals_fingerprint,
    skeleton,
    static_deps,
)
from repro.service.backends import (
    FileBackend,
    StoreBackend,
    open_backend,
)
from repro.service.serialize import (
    FORMAT_VERSION,
    DecodedAnalysis,
    canonical_json,
    decode_analysis,
    encode_analysis,
)

#: Schema version of per-function summary records (``fn-`` keys) and
#: skeleton records (``skel-`` keys).  Participates in both key
#: derivations, so a schema change is a clean cache miss.
SUMMARY_VERSION = 2

#: Environment variable overriding the default store location.  Holds
#: either a bare directory path (filesystem backend, historical
#: behavior) or any backend URL (``sqlite:…``, ``memory://``,
#: ``memory+file:…``); an explicit ``--store`` / constructor argument
#: always wins over the environment.
STORE_ENV = "REPRO_PTA_STORE"


def default_store_root() -> Path:
    env = os.environ.get(STORE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-pta"


def default_store_url() -> str:
    """The backend URL the environment selects (path or URL forms)."""
    env = os.environ.get(STORE_ENV)
    if env:
        return env
    return str(Path.home() / ".cache" / "repro-pta")


@dataclass
class StoreStats:
    """Per-store-instance traffic counters."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    invalid: int = 0  # corrupt / version-skewed payloads dropped

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        result = asdict(self)
        result["hit_rate"] = round(self.hit_rate, 4)
        return result


class ResultStore:
    """A content-addressed cache of encoded analysis results.

    ``location`` may be a directory path (filesystem backend), a
    backend URL string, an opened :class:`StoreBackend`, or ``None``
    for the environment/default location.
    """

    def __init__(
        self, location: str | Path | StoreBackend | None = None
    ) -> None:
        if location is None:
            location = default_store_url()
        if isinstance(location, (str, Path)):
            self.backend: StoreBackend = open_backend(location)
        else:
            self.backend = location
        self.stats = StoreStats()

    # -- backend passthroughs ----------------------------------------------

    @property
    def url(self) -> str:
        """URL that reopens this store (e.g. in a worker process)."""
        return self.backend.url

    @property
    def process_shared(self) -> bool:
        return self.backend.process_shared

    @property
    def root(self) -> Path:
        """Filesystem root, for file-backed stores only."""
        backend = self.backend
        if isinstance(backend, FileBackend):
            return backend.root
        back = getattr(backend, "back", None)
        if isinstance(back, FileBackend):
            return back.root
        raise AttributeError(
            f"store backend {self.url!r} has no filesystem root"
        )

    def path_for(self, key: str) -> Path:
        """On-disk object path, for file-backed stores only."""
        backend = self.backend
        if isinstance(backend, FileBackend):
            return backend.path_for(key)
        back = getattr(backend, "back", None)
        if isinstance(back, FileBackend):
            return back.path_for(key)
        raise AttributeError(
            f"store backend {self.url!r} keeps no per-object paths"
        )

    # -- keys -------------------------------------------------------------

    @staticmethod
    def key_for(source: str, options: AnalysisOptions | None = None) -> str:
        """The content address of one (source, options) request.

        When provenance tracking is on, the key carries a marker:
        provenance-enabled artifacts embed an extra payload section, so
        they must not satisfy (or be overwritten by) plain requests for
        the same source.  The marker is *omitted* — not ``False`` —
        when tracking is off, keeping every pre-provenance cache entry
        valid.
        """
        options = options or AnalysisOptions()
        request: dict = {
            "source": source,
            "options": asdict(options),
            "format_version": FORMAT_VERSION,
        }
        if perf.CONFIG.track_provenance:
            request["provenance"] = True
        return hashlib.sha256(
            json.dumps(
                request, sort_keys=True, separators=(",", ":")
            ).encode()
        ).hexdigest()

    @staticmethod
    def summary_key(
        function: str,
        members: dict[str, str],
        globals_fp: str,
        options: AnalysisOptions | None = None,
    ) -> str:
        """Content address of one per-function summary record.

        Keyed on the function's transitive closure *fingerprints* (not
        the source text), so any program whose closure bodies match —
        including a differently-edited file — hits the same record; the
        lookup itself proves the seed valid."""
        options = options or AnalysisOptions()
        body = {
            "summary_version": SUMMARY_VERSION,
            "function": function,
            "members": dict(sorted(members.items())),
            "globals": globals_fp,
            "options": asdict(options),
        }
        return "fn-" + hashlib.sha256(canonical_json(body)).hexdigest()

    @staticmethod
    def skeleton_key(
        source: str, options: AnalysisOptions | None = None
    ) -> str:
        """Key of the skeleton record for one (source, options)
        request — the root set that keeps its summaries alive."""
        return "skel-" + ResultStore.key_for(source, options)

    @staticmethod
    def baseline_key(
        source: str,
        options: AnalysisOptions | None = None,
        checkers=None,
        unused_suppressions: bool = True,
    ) -> str:
        """Key of the finding-baseline record for one check request
        (:mod:`repro.checkers.diff`).  Keyed beside the artifact —
        same source/options/format inputs — plus the check
        configuration, since the recorded findings depend on which
        checkers ran and whether unused-suppression notes were on."""
        from repro.checkers.diff import BASELINE_VERSION

        options = options or AnalysisOptions()
        body = {
            "baseline_version": BASELINE_VERSION,
            "source": source,
            "options": asdict(options),
            "checkers": sorted(checkers) if checkers is not None else None,
            "unused_suppressions": bool(unused_suppressions),
            "format_version": FORMAT_VERSION,
        }
        return "base-" + hashlib.sha256(canonical_json(body)).hexdigest()

    # -- raw object access -------------------------------------------------

    def has(self, key: str) -> bool:
        return self.backend.has(key)

    def get(self, key: str) -> DecodedAnalysis | None:
        """The decoded payload under ``key``, or None on miss."""
        raw = self.backend.get(key)
        if raw is None:
            self.stats.misses += 1
            obs.count("store.misses")
            return None
        with obs.timed("store.decode"):
            try:
                decoded = decode_analysis(raw)
            except (ValueError, KeyError, TypeError, IndexError):
                # Corrupt or stale-format payload: drop it, report a miss.
                self.stats.invalid += 1
                self.stats.misses += 1
                obs.count("store.invalid")
                obs.count("store.misses")
                self.backend.delete(key)
                return None
        self.stats.hits += 1
        obs.count("store.hits")
        return decoded

    def put(self, key: str, payload: dict) -> None:
        """Atomically write ``payload`` under ``key``."""
        data = canonical_json(payload)
        self.backend.put(key, data)
        self.stats.puts += 1
        if obs.active():
            obs.count("store.puts")
            obs.count("store.put_bytes", len(data))

    def get_record(self, key: str) -> dict | None:
        """A raw JSON record (summary / skeleton key spaces) or None;
        undecodable records are dropped like corrupt payloads."""
        raw = self.backend.get(key)
        if raw is None:
            return None
        try:
            record = json.loads(raw)
        except ValueError:
            self.stats.invalid += 1
            obs.count("store.invalid")
            self.backend.delete(key)
            return None
        if not isinstance(record, dict):
            self.stats.invalid += 1
            obs.count("store.invalid")
            self.backend.delete(key)
            return None
        return record

    # -- per-function summary records --------------------------------------

    def put_function_summaries(
        self,
        analysis,
        source: str,
        options: AnalysisOptions | None = None,
    ) -> dict[str, str]:
        """Split a live analysis into per-function summary records plus
        one skeleton record, and store them all.

        Returns ``{function: summary_key}`` for the records written.
        The skeleton record lists its summary keys, forming the root
        set :meth:`gc_summaries` traces."""
        options = options or analysis.options
        records = capture_records(analysis, options)
        summary_keys: dict[str, str] = {}
        for func, record in records.items():
            key = self.summary_key(
                func, record["members"], record["globals"], options
            )
            self.put(key, record)
            summary_keys[func] = key
        self.put(
            self.skeleton_key(source, options),
            {
                "summary_version": SUMMARY_VERSION,
                "skeleton": skeleton(analysis.program),
                "summaries": sorted(summary_keys.values()),
            },
        )
        obs.count("store.summary_puts", len(summary_keys))
        return summary_keys

    def load_summary_bank(self, program, options=None) -> SeedBank:
        """Revive every stored summary valid for ``program`` into a
        seed bank, by content-addressed lookup from the *new* program's
        closure fingerprints (a hit is proof of validity).  Records
        whose body contradicts their address — a partial write or a
        producer bug — are dropped, never revived."""
        options = options or AnalysisOptions()
        fps = function_fingerprints(program)
        deps = static_deps(program)
        gfp = globals_fingerprint(program)
        records: dict[str, dict] = {}
        for func in program.functions:
            members = {
                member: fps[member]
                for member in sorted(closure_members(deps, func))
            }
            key = self.summary_key(func, members, gfp, options)
            record = self.get_record(key)
            if record is None:
                continue
            if (
                record.get("summary_version") != SUMMARY_VERSION
                or record.get("function") != func
                or record.get("members") != members
                or record.get("globals") != gfp
            ):
                # Stale summary: the record's own skeleton claim no
                # longer matches the address it sits under.
                self.backend.delete(key)
                self.stats.invalid += 1
                obs.count("store.stale_summaries")
                continue
            records[func] = record
        return bank_from_records(records, program)

    def gc_summaries(self) -> dict:
        """Delete orphaned summary records: ``fn-`` objects referenced
        by no ``skel-`` record (their producing artifacts were evicted
        or their sources edited away)."""
        live: set[str] = set()
        for key in self.backend.keys("skel-"):
            record = self.get_record(key)
            if record is not None:
                live.update(record.get("summaries", ()))
        removed = 0
        for key in self.backend.keys("fn-"):
            if key not in live and self.backend.delete(key):
                removed += 1
        return {"removed": removed, "live": len(live)}

    # -- maintenance -------------------------------------------------------

    def keys(self, prefix: str = "") -> list[str]:
        return self.backend.keys(prefix)

    def clear(self) -> int:
        """Delete every stored object; returns the number removed."""
        return self.backend.clear()

    def gc(self, max_bytes: int) -> dict:
        """Evict oldest objects until total size fits ``max_bytes``.

        Returns ``{"removed", "freed_bytes", "kept", "kept_bytes"}``.
        """
        entries = sorted(self.backend.entries(), key=lambda e: e[2])
        total = sum(size for _, size, _ in entries)
        removed = freed = 0
        for key, size, _ in entries:
            if total <= max_bytes:
                break
            if self.backend.delete(key):
                total -= size
                removed += 1
                freed += size
        kept = self.backend.entries()
        return {
            "removed": removed,
            "freed_bytes": freed,
            "kept": len(kept),
            "kept_bytes": sum(size for _, size, _ in kept),
        }

    def backend_stats(self) -> dict:
        return self.backend.stats()

    def flush(self) -> None:
        self.backend.flush()

    def close(self) -> None:
        self.backend.close()

    # -- the analyze-or-hit entry point -----------------------------------

    def load_or_analyze(
        self,
        source: str,
        options: AnalysisOptions | None = None,
        name: str = "<source>",
        refresh: bool = False,
    ):
        """Return ``(analysis_like, hit)`` for a source text.

        On a hit the cached :class:`DecodedAnalysis` is returned and no
        parsing or analysis happens at all.  On a miss the source is
        analyzed, encoded, stored, and the *live*
        :class:`~repro.core.analysis.PointsToAnalysis` is returned
        (queries accept either form).  ``refresh=True`` forces a miss.
        """
        options = options or AnalysisOptions()
        key = self.key_for(source, options)
        if not refresh:
            cached = self.get(key)
            if cached is not None:
                return cached, True
        else:
            self.stats.misses += 1
            obs.count("store.misses")
        analysis = analyze_source(source, options, filename=name)
        with obs.timed("store.encode"):
            payload = encode_analysis(analysis, name=name, source=source)
        self.put(key, payload)
        return analysis, False
