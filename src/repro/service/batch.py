"""Parallel batch driver and the JSON-lines serve loop.

``run_batch`` fans a set of C sources out over ``multiprocessing``
workers (``--jobs N``, default ``os.cpu_count()``), each worker
analyzing through the shared on-disk store: first runs are cold
(analyze + encode + store), repeat runs are warm (read one JSON object,
skip parsing and analysis entirely).  The report carries per-file wall
times and the store hit rate.

``serve`` reads JSON-lines requests from a stream and answers demand
queries against warm :class:`~repro.service.queries.QuerySession`
objects, one per distinct (source, options) key — the mode an editor
or external tool uses to hold a hot session::

    {"id": 1, "file": "prog.c", "query": "points_to:p@HERE"}
    {"id": 2, "source": "int main(){...}", "query": "labels"}
    {"id": 3, "file": "prog.c", "cmd": "check"}
    {"cmd": "stats"}
    {"cmd": "provenance"}
    {"cmd": "quit"}

Every response is one JSON object per line: ``{"id": ..., "ok": true,
"cached": ..., "result": ...}`` or ``{"ok": false, "error": "..."}``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro import obs
from repro.core.analysis import AnalysisOptions
from repro.service.commands import (  # noqa: F401  (_CMD_HANDLERS re-exported)
    CMD_HANDLERS as _CMD_HANDLERS,
    SERVE_COMMANDS,
    handle_request,
)
from repro.service.queries import QuerySession
from repro.service.store import ResultStore

__all__ = [
    "BatchReport",
    "SERVE_COMMANDS",
    "collect_items",
    "run_batch",
    "serve",
]


# ---------------------------------------------------------------------------
# Work-list assembly
# ---------------------------------------------------------------------------


def collect_items(
    paths: list[str], suite: bool = False
) -> list[tuple[str, str]]:
    """(name, source) work items from files, directories (recursively,
    ``*.c``), and/or the built-in benchmark suite."""
    items: list[tuple[str, str]] = []
    if suite:
        from repro.benchsuite import BENCHMARKS

        items.extend(
            (f"suite:{name}", BENCHMARKS[name].source)
            for name in sorted(BENCHMARKS)
        )
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for file in sorted(path.rglob("*.c")):
                items.append((str(file), file.read_text()))
        else:
            items.append((str(path), path.read_text()))
    return items


# ---------------------------------------------------------------------------
# Batch execution
# ---------------------------------------------------------------------------


@dataclass
class BatchReport:
    """Outcome of one batch run over a work list."""

    rows: list[dict] = field(default_factory=list)
    jobs: int = 1
    wall_s: float = 0.0
    store_root: str = ""

    @property
    def hits(self) -> int:
        return sum(1 for row in self.rows if row["hit"])

    @property
    def hit_rate(self) -> float:
        return self.hits / len(self.rows) if self.rows else 0.0

    @property
    def total_file_s(self) -> float:
        return sum(row["wall_s"] for row in self.rows)

    @property
    def errors(self) -> list[dict]:
        return [row for row in self.rows if row.get("error")]

    def as_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "files": len(self.rows),
            "hits": self.hits,
            "hit_rate": round(self.hit_rate, 4),
            "wall_s": round(self.wall_s, 6),
            "store_root": self.store_root,
            "rows": self.rows,
        }


def _run_item(
    name: str,
    source: str,
    options: AnalysisOptions,
    store: ResultStore,
    refresh: bool,
) -> dict:
    # One timing source for batch rows, trace spans, and the latency
    # histogram: obs.timed measures unconditionally and reports into
    # the tracer only when one is active.
    error: str | None = None
    with obs.timed("batch.item", item=name) as timer:
        try:
            result, hit = store.load_or_analyze(
                source, options, name=name, refresh=refresh
            )
        except Exception as exc:  # analysis/frontend failure: report, go on
            error = f"{type(exc).__name__}: {exc}"
    if error is not None:
        obs.count("batch.errors")
        return {
            "name": name,
            "hit": False,
            "wall_s": round(timer.elapsed, 6),
            "error": error,
        }
    wall = timer.elapsed
    obs.count("batch.items")
    if hit:
        statements = result.statements
        labels = len(result.labels)
        warnings = len(result.warnings)
    else:
        statements = result.program.count_basic_stmts()
        labels = len(result.program.labels)
        warnings = len(result.warnings)
    return {
        "name": name,
        "hit": hit,
        "wall_s": round(wall, 6),
        "statements": statements,
        "labels": labels,
        "warnings": warnings,
        "ig_nodes": result.ig.node_count(),
    }


def _worker(job: tuple) -> dict:
    """Pool entry point: one file through a worker-local store handle.

    Module-level (picklable) on purpose; workers share the store
    *location* (a backend URL), not the instance — file and sqlite
    writes are atomic, so races on one key at worst duplicate work,
    never corrupt it.
    """
    name, source, options_dict, store_url, refresh = job
    store = ResultStore(store_url)
    try:
        return _run_item(
            name, source, AnalysisOptions(**options_dict), store, refresh
        )
    finally:
        store.close()


def run_batch(
    items: list[tuple[str, str]],
    store: ResultStore | None = None,
    options: AnalysisOptions | None = None,
    jobs: int | None = None,
    refresh: bool = False,
) -> BatchReport:
    """Analyze every (name, source) item through the store."""
    store = store if store is not None else ResultStore()
    options = options or AnalysisOptions()
    jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)
    jobs = min(jobs, max(len(items), 1))
    if not store.process_shared:
        # A per-process backend (memory://) cannot be fanned out:
        # workers would fill private stores and drop every byte.
        jobs = 1
    report = BatchReport(jobs=jobs, store_root=store.url)
    with obs.timed("batch.run", jobs=jobs, files=len(items)) as timer:
        if jobs == 1:
            for name, source in items:
                report.rows.append(
                    _run_item(name, source, options, store, refresh)
                )
        else:
            import multiprocessing

            payloads = [
                (name, source, asdict(options), store.url, refresh)
                for name, source in items
            ]
            with multiprocessing.Pool(jobs) as pool:
                report.rows = pool.map(_worker, payloads)
    report.wall_s = timer.elapsed
    return report


# ---------------------------------------------------------------------------
# The serve loop
# ---------------------------------------------------------------------------

# The dispatch table and request handlers live in
# repro.service.commands so the TCP daemon (repro.daemon) serves the
# exact same protocol; the historical names stay importable from here.
_serve_request = handle_request


def serve(
    stdin, stdout, store: ResultStore | None = None, tracer=None
) -> int:
    """Answer JSON-lines query requests until EOF or ``quit``.

    Sessions stay warm across requests: the first query against a
    (source, options) key pays for a store lookup (or a fresh
    analysis); every later one is answered from memory.

    The loop runs under a live tracer (a fresh one unless ``tracer``
    is given), so every request is timed, every response carries a
    ``"metrics"`` block with its wall time, and a ``{"cmd":
    "metrics"}`` request reports the accumulated counters, gauges,
    and latency histograms of the loop so far.
    """
    store = store if store is not None else ResultStore()
    sessions: dict[str, QuerySession] = {}
    with obs.tracing(tracer):
        for line in stdin:
            line = line.strip()
            if not line:
                continue
            with obs.timed("serve.request") as timer:
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    response = {"ok": False, "error": f"bad JSON: {exc}"}
                else:
                    if not isinstance(request, dict):
                        response = {
                            "ok": False,
                            "error": "request must be an object",
                        }
                    else:
                        response = _serve_request(request, store, sessions)
                        if "id" in request:
                            response["id"] = request["id"]
            obs.count("serve.requests")
            if not response.get("ok", False):
                obs.count("serve.errors")
            quit_now = response.pop("quit", False)
            response["metrics"] = {"wall_ms": round(timer.elapsed * 1000, 3)}
            stdout.write(json.dumps(response, sort_keys=True) + "\n")
            stdout.flush()
            if quit_now:
                break
    return 0
