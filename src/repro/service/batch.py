"""Parallel batch driver and the JSON-lines serve loop.

``run_batch`` fans a set of C sources out over ``multiprocessing``
workers (``--jobs N``, default ``os.cpu_count()``), each worker
analyzing through the shared on-disk store: first runs are cold
(analyze + encode + store), repeat runs are warm (read one JSON object,
skip parsing and analysis entirely).  The report carries per-file wall
times and the store hit rate.

``serve`` reads JSON-lines requests from a stream and answers demand
queries against warm :class:`~repro.service.queries.QuerySession`
objects, one per distinct (source, options) key — the mode an editor
or external tool uses to hold a hot session::

    {"id": 1, "file": "prog.c", "query": "points_to:p@HERE"}
    {"id": 2, "source": "int main(){...}", "query": "labels"}
    {"id": 3, "file": "prog.c", "cmd": "check"}
    {"cmd": "stats"}
    {"cmd": "provenance"}
    {"cmd": "quit"}

Every response is one JSON object per line: ``{"id": ..., "ok": true,
"cached": ..., "result": ...}`` or ``{"ok": false, "error": "..."}``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro import obs
from repro.core import perf
from repro.core.analysis import AnalysisOptions
from repro.service.queries import QueryError, QuerySession
from repro.service.store import ResultStore


# ---------------------------------------------------------------------------
# Work-list assembly
# ---------------------------------------------------------------------------


def collect_items(
    paths: list[str], suite: bool = False
) -> list[tuple[str, str]]:
    """(name, source) work items from files, directories (recursively,
    ``*.c``), and/or the built-in benchmark suite."""
    items: list[tuple[str, str]] = []
    if suite:
        from repro.benchsuite import BENCHMARKS

        items.extend(
            (f"suite:{name}", BENCHMARKS[name].source)
            for name in sorted(BENCHMARKS)
        )
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for file in sorted(path.rglob("*.c")):
                items.append((str(file), file.read_text()))
        else:
            items.append((str(path), path.read_text()))
    return items


# ---------------------------------------------------------------------------
# Batch execution
# ---------------------------------------------------------------------------


@dataclass
class BatchReport:
    """Outcome of one batch run over a work list."""

    rows: list[dict] = field(default_factory=list)
    jobs: int = 1
    wall_s: float = 0.0
    store_root: str = ""

    @property
    def hits(self) -> int:
        return sum(1 for row in self.rows if row["hit"])

    @property
    def hit_rate(self) -> float:
        return self.hits / len(self.rows) if self.rows else 0.0

    @property
    def total_file_s(self) -> float:
        return sum(row["wall_s"] for row in self.rows)

    @property
    def errors(self) -> list[dict]:
        return [row for row in self.rows if row.get("error")]

    def as_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "files": len(self.rows),
            "hits": self.hits,
            "hit_rate": round(self.hit_rate, 4),
            "wall_s": round(self.wall_s, 6),
            "store_root": self.store_root,
            "rows": self.rows,
        }


def _run_item(
    name: str,
    source: str,
    options: AnalysisOptions,
    store: ResultStore,
    refresh: bool,
) -> dict:
    # One timing source for batch rows, trace spans, and the latency
    # histogram: obs.timed measures unconditionally and reports into
    # the tracer only when one is active.
    error: str | None = None
    with obs.timed("batch.item", item=name) as timer:
        try:
            result, hit = store.load_or_analyze(
                source, options, name=name, refresh=refresh
            )
        except Exception as exc:  # analysis/frontend failure: report, go on
            error = f"{type(exc).__name__}: {exc}"
    if error is not None:
        obs.count("batch.errors")
        return {
            "name": name,
            "hit": False,
            "wall_s": round(timer.elapsed, 6),
            "error": error,
        }
    wall = timer.elapsed
    obs.count("batch.items")
    if hit:
        statements = result.statements
        labels = len(result.labels)
        warnings = len(result.warnings)
    else:
        statements = result.program.count_basic_stmts()
        labels = len(result.program.labels)
        warnings = len(result.warnings)
    return {
        "name": name,
        "hit": hit,
        "wall_s": round(wall, 6),
        "statements": statements,
        "labels": labels,
        "warnings": warnings,
        "ig_nodes": result.ig.node_count(),
    }


def _worker(job: tuple) -> dict:
    """Pool entry point: one file through a worker-local store handle.

    Module-level (picklable) on purpose; workers share the store
    *directory*, not the instance — writes are atomic, so races on one
    key at worst duplicate work, never corrupt it.
    """
    name, source, options_dict, store_root, refresh = job
    store = ResultStore(Path(store_root))
    return _run_item(
        name, source, AnalysisOptions(**options_dict), store, refresh
    )


def run_batch(
    items: list[tuple[str, str]],
    store: ResultStore | None = None,
    options: AnalysisOptions | None = None,
    jobs: int | None = None,
    refresh: bool = False,
) -> BatchReport:
    """Analyze every (name, source) item through the store."""
    store = store if store is not None else ResultStore()
    options = options or AnalysisOptions()
    jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)
    jobs = min(jobs, max(len(items), 1))
    report = BatchReport(jobs=jobs, store_root=str(store.root))
    with obs.timed("batch.run", jobs=jobs, files=len(items)) as timer:
        if jobs == 1:
            for name, source in items:
                report.rows.append(
                    _run_item(name, source, options, store, refresh)
                )
        else:
            import multiprocessing

            payloads = [
                (name, source, asdict(options), str(store.root), refresh)
                for name, source in items
            ]
            with multiprocessing.Pool(jobs) as pool:
                report.rows = pool.map(_worker, payloads)
    report.wall_s = timer.elapsed
    return report


# ---------------------------------------------------------------------------
# The serve loop
# ---------------------------------------------------------------------------


def _request_source(request: dict):
    """(name, source, error) from a request's ``source``/``file``."""
    if "source" in request:
        return "<inline>", request["source"], None
    if "file" in request:
        path = Path(request["file"])
        try:
            return str(path), path.read_text(), None
        except OSError as exc:
            return None, None, {
                "ok": False,
                "error": f"cannot read {path}: {exc}",
            }
    return None, None, {"ok": False, "error": "missing 'file' or 'source'"}


def _request_options(request: dict):
    """(options, error) from a request's ``options`` object."""
    try:
        return AnalysisOptions(**request.get("options", {})), None
    except TypeError as exc:
        return None, {"ok": False, "error": f"bad options: {exc}"}


def _cmd_stats(request, store, sessions) -> dict:
    return {
        "ok": True,
        "result": {
            "store": store.stats.as_dict(),
            "sessions": len(sessions),
            "queries": {
                key[:12]: session.stats.as_dict()
                for key, session in sorted(sessions.items())
            },
        },
    }


def _cmd_metrics(request, store, sessions) -> dict:
    # The tracer's cumulative view of the serve loop: counters (store
    # traffic, analysis work), gauges, and the per-query latency
    # histograms (see docs/OBSERVABILITY.md).
    tracer = obs.get_tracer()
    return {
        "ok": True,
        "result": {
            "tracing": tracer.enabled,
            "metrics": tracer.snapshot(),
            "store": store.stats.as_dict(),
            "sessions": len(sessions),
        },
    }


def _cmd_provenance(request, store, sessions) -> dict:
    # Gated on the recording switch: when it is off, sessions hold no
    # derivation logs, so say how to get them instead of reporting an
    # all-None table.
    if not perf.CONFIG.track_provenance:
        return {
            "ok": False,
            "error": (
                "provenance tracking is off: enable "
                "perf.CONFIG.track_provenance before serving "
                "(see docs/PROVENANCE.md)"
            ),
            "cmd": request["cmd"],
        }
    summaries = {}
    for key, session in sorted(sessions.items()):
        log = getattr(session.analysis, "provenance", None)
        summaries[key[:12]] = (
            None
            if log is None
            else {
                "records": len(log.records),
                "classes": log.class_counts(),
                "symbolic_intros": len(log.symbolic_intros),
            }
        )
    return {
        "ok": True,
        "result": {"enabled": True, "sessions": summaries},
    }


def _cmd_check(request, store, sessions) -> dict:
    """Run the pointer-bug checkers over the request's source (through
    the store: warm keys are checked against the decoded artifact).
    Optional keys: ``checkers`` (list of ids), ``provenance`` (default
    True — findings carry derivation witnesses), ``format`` ("sarif"
    returns the rendered SARIF document instead of finding dicts)."""
    from repro.checkers import CheckerError, render_sarif, run_checkers

    name, source, error = _request_source(request)
    if error is not None:
        return error
    options, error = _request_options(request)
    if error is not None:
        return error
    track = bool(request.get("provenance", True))
    try:
        with perf.configured(track_provenance=track):
            result, hit = store.load_or_analyze(source, options, name=name)
    except Exception as exc:
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    try:
        findings = run_checkers(
            result, source=source, checkers=request.get("checkers")
        )
    except CheckerError as exc:
        return {"ok": False, "error": str(exc)}
    errors = sum(1 for f in findings if f.severity == "error")
    payload: dict = {
        "errors": errors,
        "warnings": len(findings) - errors,
    }
    if request.get("format") == "sarif":
        payload["sarif"] = render_sarif(findings, name or "<inline>")
    else:
        payload["findings"] = [f.as_dict() for f in findings]
    return {"ok": True, "cached": hit, "result": payload}


def _cmd_quit(request, store, sessions) -> dict:
    return {"ok": True, "result": "bye", "quit": True}


#: The serve loop's command dispatch table.  ``SERVE_COMMANDS`` (the
#: list reported on an unknown ``cmd``) is derived from it, so adding a
#: handler here is the single step to extend the protocol.
_CMD_HANDLERS = {
    "check": _cmd_check,
    "metrics": _cmd_metrics,
    "provenance": _cmd_provenance,
    "quit": _cmd_quit,
    "stats": _cmd_stats,
}

#: Control commands the serve loop understands (reported back on an
#: unknown ``cmd`` so callers can discover the protocol), always
#: alphabetical because it is derived from the dispatch table.
SERVE_COMMANDS = tuple(sorted(_CMD_HANDLERS))


def _serve_request(
    request: dict,
    store: ResultStore,
    sessions: dict[str, QuerySession],
) -> dict:
    if "cmd" in request:
        cmd = request["cmd"]
        handler = _CMD_HANDLERS.get(cmd)
        if handler is None:
            return {
                "ok": False,
                "error": f"unknown cmd {cmd!r}",
                "cmd": cmd,
                "known_cmds": list(SERVE_COMMANDS),
            }
        return handler(request, store, sessions)

    if "query" not in request:
        return {"ok": False, "error": "missing 'query'"}
    name, source, error = _request_source(request)
    if error is not None:
        return error
    options, error = _request_options(request)
    if error is not None:
        return error
    key = store.key_for(source, options)
    session = sessions.get(key)
    if session is None:
        try:
            result, _ = store.load_or_analyze(source, options, name=name)
        except Exception as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        session = sessions[key] = QuerySession(result)
    try:
        answer = session.evaluate(request["query"])
    except QueryError as exc:
        return {"ok": False, "error": str(exc)}
    return {"ok": True, "cached": session.cached, "result": answer}


def serve(
    stdin, stdout, store: ResultStore | None = None, tracer=None
) -> int:
    """Answer JSON-lines query requests until EOF or ``quit``.

    Sessions stay warm across requests: the first query against a
    (source, options) key pays for a store lookup (or a fresh
    analysis); every later one is answered from memory.

    The loop runs under a live tracer (a fresh one unless ``tracer``
    is given), so every request is timed, every response carries a
    ``"metrics"`` block with its wall time, and a ``{"cmd":
    "metrics"}`` request reports the accumulated counters, gauges,
    and latency histograms of the loop so far.
    """
    store = store if store is not None else ResultStore()
    sessions: dict[str, QuerySession] = {}
    with obs.tracing(tracer):
        for line in stdin:
            line = line.strip()
            if not line:
                continue
            with obs.timed("serve.request") as timer:
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    response = {"ok": False, "error": f"bad JSON: {exc}"}
                else:
                    if not isinstance(request, dict):
                        response = {
                            "ok": False,
                            "error": "request must be an object",
                        }
                    else:
                        response = _serve_request(request, store, sessions)
                        if "id" in request:
                            response["id"] = request["id"]
            obs.count("serve.requests")
            if not response.get("ok", False):
                obs.count("serve.errors")
            quit_now = response.pop("quit", False)
            response["metrics"] = {"wall_ms": round(timer.elapsed * 1000, 3)}
            stdout.write(json.dumps(response, sort_keys=True) + "\n")
            stdout.flush()
            if quit_now:
                break
    return 0
