"""The service request protocol, shared by every transport.

One request is one JSON object; :func:`handle_request` answers it
against a :class:`~repro.service.store.ResultStore` plus a mapping of
warm :class:`~repro.service.queries.QuerySession` objects.  The
JSON-lines stdin serve loop (``repro-pta batch --serve``,
:mod:`repro.service.batch`) and the concurrent TCP daemon
(:mod:`repro.daemon`) both dispatch through the same
:data:`CMD_HANDLERS` table, which is what keeps the ``stats`` /
``metrics`` / ``provenance`` / ``check`` / ``update`` / ``query``
verbs behaviorally identical over both transports (asserted by a
parametrized transport-equality test).

Adding a handler to :data:`CMD_HANDLERS` is the single step to extend
the protocol on every transport at once; :data:`SERVE_COMMANDS` (the
list reported back on an unknown ``cmd``) is derived from the table.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path
from typing import MutableMapping

from repro import obs
from repro.core import perf
from repro.core.analysis import AnalysisOptions
from repro.service.queries import QueryError, QuerySession
from repro.service.store import ResultStore


class SessionCache(MutableMapping):
    """An LRU-bounded mapping of warm query sessions.

    ``capacity=None`` (the serve loop's historical behavior) never
    evicts; a bounded cache drops the least-recently-used session when
    a new key would exceed the capacity.  Lookups refresh recency.
    """

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("SessionCache capacity must be >= 1 or None")
        self.capacity = capacity
        self.evictions = 0
        self._sessions: OrderedDict[str, QuerySession] = OrderedDict()

    def __getitem__(self, key: str) -> QuerySession:
        session = self._sessions[key]
        self._sessions.move_to_end(key)
        return session

    def __setitem__(self, key: str, session: QuerySession) -> None:
        self._sessions[key] = session
        self._sessions.move_to_end(key)
        while (
            self.capacity is not None
            and len(self._sessions) > self.capacity
        ):
            self._sessions.popitem(last=False)
            self.evictions += 1
            obs.count("sessions.evicted")

    def __delitem__(self, key: str) -> None:
        del self._sessions[key]

    def __iter__(self):
        return iter(list(self._sessions))

    def __len__(self) -> int:
        return len(self._sessions)

    def items(self):
        # Recency-neutral snapshot: stats/provenance introspection must
        # not refresh LRU order (the default MutableMapping.items goes
        # through __getitem__, which would).
        return [(key, self._sessions[key]) for key in self._sessions]


# ---------------------------------------------------------------------------
# Request plumbing
# ---------------------------------------------------------------------------


def request_source(request: dict):
    """(name, source, error) from a request's ``source``/``file``."""
    if "source" in request:
        return "<inline>", request["source"], None
    if "file" in request:
        path = Path(request["file"])
        try:
            return str(path), path.read_text(), None
        except OSError as exc:
            return None, None, {
                "ok": False,
                "error": f"cannot read {path}: {exc}",
            }
    return None, None, {"ok": False, "error": "missing 'file' or 'source'"}


def request_options(request: dict):
    """(options, error) from a request's ``options`` object."""
    try:
        return AnalysisOptions(**request.get("options", {})), None
    except TypeError as exc:
        return None, {"ok": False, "error": f"bad options: {exc}"}


# ---------------------------------------------------------------------------
# Control-command handlers
# ---------------------------------------------------------------------------


def _cmd_stats(request, store, sessions) -> dict:
    return {
        "ok": True,
        "result": {
            "store": store.stats.as_dict(),
            "sessions": len(sessions),
            "queries": {
                key[:12]: session.stats.as_dict()
                for key, session in sorted(sessions.items())
            },
        },
    }


def _cmd_metrics(request, store, sessions) -> dict:
    # The tracer's cumulative view of the serve loop: counters (store
    # traffic, analysis work), gauges, and the per-query latency
    # histograms (see docs/OBSERVABILITY.md).  ``format:
    # "prometheus"`` returns the text exposition of the same snapshot
    # instead of the JSON registry.
    tracer = obs.get_tracer()
    result = {
        "tracing": tracer.enabled,
        "metrics": tracer.snapshot(),
        "store": store.stats.as_dict(),
        "backend": store.backend_stats(),
        "sessions": len(sessions),
    }
    requested_format = request.get("format")
    if requested_format == "prometheus":
        from repro.obs.prometheus import render_prometheus

        result["prometheus"] = render_prometheus(
            result["metrics"],
            extra_gauges={"serve.sessions": len(sessions)},
        )
    elif requested_format is not None and requested_format != "json":
        return {
            "ok": False,
            "error": f"unknown metrics format {requested_format!r}",
            "known_formats": ["json", "prometheus"],
        }
    return {"ok": True, "result": result}


def _cmd_events(request, store, sessions) -> dict:
    # The process journal: lifecycle events (update tiers chosen, GC,
    # slow requests) with monotone sequence numbers.  A pruned or
    # future range answers with a structured error naming the oldest
    # retained sequence (see Journal.answer).
    return obs.journal().answer(request.get("since"))


def _cmd_trace(request, store, sessions) -> dict:
    # Finished request-trace documents, keyed by the trace id stamped
    # on a traced response.  Accepts "trace_id" (canonical) or "id"
    # (the ISSUE's shorthand; note "id" is also echoed back as the
    # client correlation tag, which is harmless here).
    trace_id = request.get("trace_id", request.get("id"))
    return obs.traces().answer(trace_id)


def _cmd_provenance(request, store, sessions) -> dict:
    # Gated on the recording switch: when it is off, sessions hold no
    # derivation logs, so say how to get them instead of reporting an
    # all-None table.
    if not perf.CONFIG.track_provenance:
        return {
            "ok": False,
            "error": (
                "provenance tracking is off: enable "
                "perf.CONFIG.track_provenance before serving "
                "(see docs/PROVENANCE.md)"
            ),
            "cmd": request["cmd"],
        }
    summaries = {}
    for key, session in sorted(sessions.items()):
        log = getattr(session.analysis, "provenance", None)
        summaries[key[:12]] = (
            None
            if log is None
            else {
                "records": len(log.records),
                "classes": log.class_counts(),
                "symbolic_intros": len(log.symbolic_intros),
            }
        )
    return {
        "ok": True,
        "result": {"enabled": True, "sessions": summaries},
    }


def _cmd_check(request, store, sessions) -> dict:
    """Run the pointer-bug checkers over the request's source (through
    the store: warm keys are checked against the decoded artifact).
    Optional keys: ``checkers`` (list of ids), ``provenance`` (default
    True — findings carry derivation witnesses), ``format`` ("sarif"
    returns the rendered SARIF document instead of finding dicts)."""
    from repro.checkers import CheckerError, render_sarif, run_checkers

    name, source, error = request_source(request)
    if error is not None:
        return error
    options, error = request_options(request)
    if error is not None:
        return error
    track = bool(request.get("provenance", True))
    try:
        with perf.configured(track_provenance=track):
            result, hit = store.load_or_analyze(source, options, name=name)
    except Exception as exc:
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    try:
        findings = run_checkers(
            result,
            source=source,
            checkers=request.get("checkers"),
            unused_suppressions=bool(
                request.get("unused_suppressions", True)
            ),
        )
    except CheckerError as exc:
        return {"ok": False, "error": str(exc)}
    errors = sum(1 for f in findings if f.severity == "error")
    payload: dict = {
        "errors": errors,
        "warnings": len(findings) - errors,
    }
    if request.get("format") == "sarif":
        payload["sarif"] = render_sarif(findings, name or "<inline>")
    else:
        payload["findings"] = [f.as_dict() for f in findings]
    return {"ok": True, "cached": hit, "result": payload}


def _cmd_quit(request, store, sessions) -> dict:
    return {"ok": True, "result": "bye", "quit": True}


#: Per-target-key locks serializing concurrent ``update`` requests:
#: the first request in computes, later ones coalesce onto the warm
#: session it installed instead of re-running the update.
_UPDATE_LOCKS: dict[str, threading.Lock] = {}
_UPDATE_LOCKS_GUARD = threading.Lock()


def _update_lock(key: str) -> threading.Lock:
    with _UPDATE_LOCKS_GUARD:
        lock = _UPDATE_LOCKS.get(key)
        if lock is None:
            lock = _UPDATE_LOCKS[key] = threading.Lock()
        return lock


def _cmd_update(request, store, sessions) -> dict:
    """Incrementally re-analyze an edited source.

    ``source``/``file`` name the *new* text; optional ``from`` carries
    the predecessor text whose warm session (or stored artifact) the
    update reuses.  On success the warm session is re-keyed to the new
    source, so subsequent queries for it never re-analyze.  Concurrent
    updates to the same target key coalesce: one computes, the rest
    reuse its session (``"coalesced": true``)."""
    name, source, error = request_source(request)
    if error is not None:
        return error
    options, error = request_options(request)
    if error is not None:
        return error
    new_key = store.key_for(source, options)
    with _update_lock(new_key):
        session = sessions.get(new_key)
        if session is not None:
            # Another update (or query) already warmed this exact
            # source — nothing to recompute.
            _record_update_tier("unchanged", new_key)
            return {
                "ok": True,
                "coalesced": True,
                "cached": session.cached,
                "result": {"mode": "unchanged", "key": new_key[:12]},
            }
        base_source = request.get("from")
        base_key = (
            store.key_for(base_source, options)
            if isinstance(base_source, str)
            else None
        )
        session = sessions.get(base_key) if base_key else None
        if session is not None and session.source is None:
            session.source = base_source
        if session is None and base_key is not None:
            # No warm predecessor in this process: fall back to its
            # stored artifact (plans from the payload skeleton, seeds
            # from per-function summary records).
            decoded = store.get(base_key)
            if decoded is not None:
                session = QuerySession(decoded, base_source)
        try:
            if session is not None:
                report = session.update(source, store=store).as_dict()
                if base_key is not None:
                    sessions.pop(base_key, None)
            else:
                # Nothing to update from; behave like a first query.
                result, hit = store.load_or_analyze(
                    source, options, name=name
                )
                session = QuerySession(result, source)
                report = {
                    "mode": "cached" if hit else "cold",
                    "fallback": "no base session or artifact",
                }
        except Exception as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        sessions[new_key] = session
        report["key"] = new_key[:12]
        _record_update_tier(report.get("mode"), new_key)
        return {"ok": True, "cached": session.cached, "result": report}


def _cmd_watch(request, store, sessions) -> dict:
    """Differentially check an edited source (docs/CHECKERS.md).

    ``source``/``file`` carry the *new* text.  Without ``from`` the
    verb *establishes* a watch: full check, finding baseline persisted
    beside the artifact, every finding reported.  With ``from`` (the
    predecessor text) it rides the update ladder plus the baseline and
    reports only what changed: ``new`` and ``fixed`` finding lists
    plus an ``unchanged`` count.  Optional keys: ``checkers``,
    ``unused_suppressions`` (default true), ``options``.  Runs
    provenance-off (the splice tier requires it), so watch sessions
    are keyed independently of any provenance-on query sessions.
    """
    from repro.checkers import (
        CheckerError,
        build_baseline,
        check_diff,
        select_checkers,
    )

    name, source, error = request_source(request)
    if error is not None:
        return error
    options, error = request_options(request)
    if error is not None:
        return error
    base_source = request.get("from")
    if base_source is not None and not isinstance(base_source, str):
        return {"ok": False, "error": "'from' must be a source string"}
    unused = bool(request.get("unused_suppressions", True))
    checkers = request.get("checkers")
    try:
        selected = (
            None if checkers is None
            else {checker.id for checker in select_checkers(checkers)}
        )
    except CheckerError as exc:
        return {"ok": False, "error": str(exc)}

    with perf.configured(track_provenance=False):
        new_key = store.key_for(source, options)
    with _update_lock(new_key):
        if base_source is None:
            try:
                with perf.configured(track_provenance=False):
                    result, hit = store.load_or_analyze(
                        source, options, name=name
                    )
                    if getattr(result, "program", None) is not None:
                        store.put_function_summaries(
                            result, source, options
                        )
                    baseline = build_baseline(
                        result, source,
                        checkers=checkers, unused_suppressions=unused,
                    )
                    store.put(
                        store.baseline_key(
                            source, options, checkers=selected,
                            unused_suppressions=unused,
                        ),
                        baseline,
                    )
            except CheckerError as exc:
                return {"ok": False, "error": str(exc)}
            except Exception as exc:
                return {
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            session = QuerySession(result, source)
            sessions[new_key] = session
            findings = [record for _, record in baseline["reported"]]
            errors = sum(
                1 for record in findings if record["severity"] == "error"
            )
            obs.event(
                "watch", established=True, key=new_key[:12],
                findings=len(findings),
            )
            return {
                "ok": True,
                "cached": hit,
                "result": {
                    "established": True,
                    "key": new_key[:12],
                    "errors": errors,
                    "warnings": len(findings) - errors,
                    "findings": findings,
                },
            }

        with perf.configured(track_provenance=False):
            base_key = store.key_for(base_source, options)
        base_session = sessions.get(base_key)
        base_analysis = (
            base_session.analysis if base_session is not None else None
        )
        try:
            report = check_diff(
                source,
                old_source=base_source,
                old_analysis=base_analysis,
                store=store,
                options=options,
                checkers=checkers,
                unused_suppressions=unused,
                filename=name,
            )
        except CheckerError as exc:
            return {"ok": False, "error": str(exc)}
        except Exception as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        session = QuerySession(report.analysis, source)
        sessions[new_key] = session
        if base_key != new_key:
            sessions.pop(base_key, None)
        new = [
            finding.as_dict()
            for finding, status in zip(report.findings, report.statuses)
            if status == "new"
        ]
        unchanged = sum(
            1 for status in report.statuses if status == "unchanged"
        )
        obs.event(
            "watch", mode=report.mode, key=new_key[:12],
            new=len(new), fixed=len(report.absent),
        )
        return {
            "ok": True,
            "cached": session.cached,
            "result": {
                "mode": report.mode,
                "key": new_key[:12],
                "dirty_functions": report.dirty_functions,
                "replayed": report.replayed,
                "new": new,
                "fixed": report.absent,
                "unchanged": unchanged,
            },
        }


def _record_update_tier(mode, new_key: str) -> None:
    """Per-tier outcome counters + a journal event for every update:
    which rung of the splice/seeded/cold ladder actually served the
    request (docs/INCREMENTAL.md) — the warm-path effectiveness signal
    ``repro-pta top`` and the Prometheus exposition surface."""
    tier = mode if isinstance(mode, str) and mode else "unknown"
    obs.count(f"incremental.tier.{tier}")
    obs.event("update_tier", tier=tier, key=new_key[:12])


#: The protocol's command dispatch table.  ``SERVE_COMMANDS`` (the
#: list reported on an unknown ``cmd``) is derived from it, so adding a
#: handler here is the single step to extend the protocol — on stdin
#: and on TCP at once.
CMD_HANDLERS = {
    "check": _cmd_check,
    "events": _cmd_events,
    "metrics": _cmd_metrics,
    "provenance": _cmd_provenance,
    "quit": _cmd_quit,
    "stats": _cmd_stats,
    "trace": _cmd_trace,
    "update": _cmd_update,
    "watch": _cmd_watch,
}

#: Control commands the protocol understands (reported back on an
#: unknown ``cmd`` so callers can discover the protocol), always
#: alphabetical because it is derived from the dispatch table.
SERVE_COMMANDS = tuple(sorted(CMD_HANDLERS))

#: Commands whose answers aggregate over *sessions* (and so, in the
#: sharded daemon, fan out to every worker and merge) rather than
#: touching one source's shard.
AGGREGATE_COMMANDS = ("provenance", "stats")


def handle_request(
    request: dict,
    store: ResultStore,
    sessions: MutableMapping,
) -> dict:
    """Answer one protocol request (shared by stdin and TCP serving).

    A ``"trace"`` key (``true`` or a caller-supplied trace id) runs
    the request under a fresh per-request tracer: the captured span
    tree + metrics land in the process trace buffer (drained by the
    ``trace`` verb), the response is stamped with ``trace_id``, and
    the request's counters/histograms fold back into whatever
    process-wide tracer was already installed so long-run metrics
    stay complete.
    """
    trace_spec = request.get("trace")
    if trace_spec:
        return _traced_request(request, store, sessions, trace_spec)
    return _handle_untraced(request, store, sessions)


def _traced_request(
    request: dict, store, sessions, trace_spec
) -> dict:
    from repro.obs.merge import fold_snapshot
    from repro.obs.tracer import Tracer
    from repro.obs.traces import TRACE_VERSION

    trace_id = (
        trace_spec if isinstance(trace_spec, str) else obs.new_trace_id()
    )
    body = {key: value for key, value in request.items() if key != "trace"}
    previous = obs.get_tracer()
    tracer = Tracer()
    with obs.tracing(tracer):
        with tracer.span("handle", cmd=body.get("cmd", "query")):
            response = _handle_untraced(body, store, sessions)
    tracer.check_balanced()
    if previous.enabled:
        fold_snapshot(previous, tracer.snapshot())
    document = {
        "trace_version": TRACE_VERSION,
        "trace_id": trace_id,
        "spans": tracer.events(),
        "metrics": tracer.snapshot(),
    }
    obs.traces().put(trace_id, document)
    response = dict(response)
    response["trace_id"] = trace_id
    return response


def _handle_untraced(
    request: dict,
    store: ResultStore,
    sessions: MutableMapping,
) -> dict:
    if "cmd" in request:
        cmd = request["cmd"]
        handler = CMD_HANDLERS.get(cmd)
        if handler is None:
            return {
                "ok": False,
                "error": f"unknown cmd {cmd!r}",
                "cmd": cmd,
                "known_cmds": list(SERVE_COMMANDS),
            }
        return handler(request, store, sessions)

    if "query" not in request:
        return {"ok": False, "error": "missing 'query'"}
    name, source, error = request_source(request)
    if error is not None:
        return error
    options, error = request_options(request)
    if error is not None:
        return error
    key = store.key_for(source, options)
    session = sessions.get(key)
    if session is None:
        try:
            result, _ = store.load_or_analyze(source, options, name=name)
        except Exception as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        session = sessions[key] = QuerySession(result, source)
    try:
        answer = session.evaluate(request["query"])
    except QueryError as exc:
        return {"ok": False, "error": str(exc)}
    return {"ok": True, "cached": session.cached, "result": answer}
