"""Stable, versioned JSON encoding of a completed analysis.

``encode_analysis`` flattens a live
:class:`~repro.core.analysis.PointsToAnalysis` into a JSON-safe dict;
``decode_analysis`` rebuilds a :class:`DecodedAnalysis` that answers
the same questions *without the program*: labels, per-statement
triples, the invocation graph, per-function name-resolution scopes,
precomputed read/write sets, and the Tables 2-6 / perf summaries all
travel inside the payload.  That self-containment is what makes the
result store's warm path fast — a cache hit never re-parses the C
source (parsing costs more than the analysis itself on this suite).

Determinism: the encoder never iterates an unordered container without
sorting it, and :func:`encode_analysis_bytes` serializes with
``sort_keys`` and fixed separators, so encoding the same analysis in
two different processes (different ``PYTHONHASHSEED``) produces
byte-identical output.  The store's content-addressing and the
round-trip property test both rely on this.

The format is versioned (:data:`FORMAT_VERSION`); the version is part
of the store key, so a format change simply misses the cache instead
of mis-decoding stale payloads.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict

from repro.core.analysis import AnalysisOptions, _is_temp_name
from repro.core.interproc import MemoStats
from repro.core.invocation_graph import IGNode, IGNodeKind, InvocationGraph
from repro.core.locations import AbsLoc, LocKind
from repro.core.pointsto import D, P, PointsToSet
from repro.checkers.facts import CheckFacts, collect_facts
from repro.core.provenance import CLASSIFICATION, Derivation
from repro.core.readwrite import ReadWriteSets, function_read_write
from repro.simple.ir import iter_stmts

#: Bump whenever the payload layout changes; stale store entries are
#: then simply cache misses (the version participates in the key).
#: v2: "checkfacts" section (checker-framework program facts) and
#: call read/write sets folded over resolved callees.
#: v3: "incremental" section (per-function body fingerprints, the
#: static dependency graph, and the globals fingerprint) feeding the
#: incremental update planner.  v2 payloads still decode (they simply
#: plan cold).
FORMAT_VERSION = 3

#: Payload versions :class:`DecodedAnalysis` accepts.
SUPPORTED_VERSIONS = frozenset({2, 3})

#: Version of the *optional* ``"provenance"`` payload section.  The
#: section is versioned independently: it only appears when the
#: producing run recorded derivations, and payloads without it must
#: stay byte-identical across releases that only change this schema.
PROVENANCE_VERSION = 1


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def _loc_sort_key(loc: AbsLoc):
    return (loc.kind.value, loc.func or "", loc.base, loc.path)


class _LocTable:
    """Interning table assigning dense indexes to abstract locations.

    Indexes are assigned in sorted order over the full location
    population (collected up front), so the table — and every index
    that references it — is independent of hash ordering.
    """

    def __init__(self, locations: set[AbsLoc]):
        self.locations = sorted(locations, key=_loc_sort_key)
        self._index = {loc: i for i, loc in enumerate(self.locations)}

    def index(self, loc: AbsLoc) -> int:
        return self._index[loc]

    def encode(self) -> list:
        return [
            [loc.base, loc.kind.value, loc.func, list(loc.path)]
            for loc in self.locations
        ]


def _collect_locations(analysis, readwrite) -> set[AbsLoc]:
    locations: set[AbsLoc] = set()
    for info in analysis.point_info.values():
        for src, tgt, _ in info.triples():
            locations.add(src)
            locations.add(tgt)
    for sets_list in readwrite.values():
        for sets in sets_list:
            locations |= sets.must_write | sets.may_write | sets.reads
    return locations


def _encode_triples(info: PointsToSet, table: _LocTable) -> list:
    triples = [
        [table.index(src), table.index(tgt), "D" if d is D else "P"]
        for src, tgt, d in info.triples()
    ]
    triples.sort()
    return triples


def _encode_ig(ig) -> list:
    """The invocation graph as a flat node list.

    Children are listed in their original insertion order (the order
    the analysis attached them), which is deterministic because the
    analysis is; preserving it makes ``render()``/``to_dot()`` of the
    decoded graph byte-identical to the original's.
    """
    nodes: list[IGNode] = list(ig.root.walk())
    index = {id(node): i for i, node in enumerate(nodes)}
    encoded = []
    for node in nodes:
        edges = [
            [site, index[id(child)]]
            for site, by_callee in node.children.items()
            for child in by_callee.values()
        ]
        partner = (
            index[id(node.rec_partner)] if node.rec_partner is not None else -1
        )
        encoded.append([node.func, node.kind.value, partner, edges])
    return encoded


def _encode_scopes(analysis) -> dict:
    """Per-function name-resolution tables mirroring
    :meth:`repro.core.env.FuncEnv.var_loc`'s lookup order."""
    program = analysis.program
    scopes: dict[str, dict] = {}
    for name in sorted(program.functions):
        fn = program.functions[name]
        env = analysis.env(name)
        scopes[name] = {
            "params": sorted(fn.param_names),
            "locals": sorted(fn.local_types),
            "symbolics": sorted(env.symbolic_names()),
        }
    return scopes


def _encode_readwrite(readwrite, table: _LocTable, stmt_ids: dict) -> dict:
    def locs(values) -> list[int]:
        return sorted(table.index(loc) for loc in values)

    return {
        func: [
            [
                stmt_ids[s.stmt_id],
                locs(s.must_write),
                locs(s.may_write),
                locs(s.reads),
            ]
            for s in sets_list
        ]
        for func, sets_list in sorted(readwrite.items())
    }


def _collect_summaries(analysis, name: str) -> dict:
    # Imported here: statistics imports analysis, and keeping the
    # dependency one-way at module load avoids an import cycle if
    # statistics ever grows a service hook.
    from repro.core.statistics import (
        collect_perf,
        collect_table2,
        collect_table3,
        collect_table4,
        collect_table5,
        collect_table6,
    )

    return {
        "table2": asdict(collect_table2(analysis, name)),
        "table3": asdict(collect_table3(analysis, name)),
        "table4": asdict(collect_table4(analysis, name)),
        "table5": asdict(collect_table5(analysis, name)),
        "table6": asdict(collect_table6(analysis, name)),
        "perf": collect_perf(analysis, name).as_dict(),
    }


def _encode_provenance(log, stmt_ids: dict[int, int]) -> dict:
    """The derivation log as a self-contained payload section.

    The section carries its *own* location table: reusing the main
    payload's table would shift its indexes (derivations mention
    killed/intermediate locations the final triples don't), and the
    contract is that stripping the ``"provenance"`` key from an
    enabled-run payload yields the byte-identical disabled-run payload.

    Records keep their list order (a record's id is its index), so
    ``latest`` and the parent links survive encoding for free.  Live
    statement ids are renumbered through the same canonical mapping as
    the rest of the payload; a ``None`` statement (NULL initialization)
    stays ``null``.
    """
    locations: set[AbsLoc] = set()
    for record in log.records:
        locations.add(record.src)
        locations.add(record.tgt)
    table = _LocTable(locations)
    return {
        "version": PROVENANCE_VERSION,
        "locations": table.encode(),
        "records": [
            [
                table.index(record.src),
                table.index(record.tgt),
                1 if record.definite else 0,
                record.rule,
                (
                    stmt_ids.get(record.stmt_id)
                    if record.stmt_id is not None
                    else None
                ),
                record.func,
                list(record.path),
                list(record.parents),
                record.extra,
            ]
            for record in log.records
        ],
        "kill_count": log.kill_count,
        "symbolic_intros": [
            {
                **intro,
                "stmt_id": (
                    stmt_ids.get(intro["stmt_id"])
                    if intro["stmt_id"] is not None
                    else None
                ),
            }
            for intro in log.symbolic_intros
        ],
    }


def _canonical_stmt_ids(program) -> dict[int, int]:
    """Live stmt_id -> canonical id.

    Statement ids come from a process-global counter, so the same
    source parsed twice (even in one process) yields different ids.
    The encoding renumbers them by position — global initializers
    first, then functions in sorted order, statements in traversal
    order — making the payload a pure function of (source, options).
    """
    mapping: dict[int, int] = {}
    for stmt in iter_stmts(program.global_init):
        mapping.setdefault(stmt.stmt_id, len(mapping) + 1)
    for name in sorted(program.functions):
        for stmt in program.functions[name].iter_stmts():
            mapping.setdefault(stmt.stmt_id, len(mapping) + 1)
    return mapping


def encode_analysis(
    analysis, name: str = "<source>", source: str | None = None
) -> dict:
    """Flatten a live analysis into a JSON-safe, deterministic dict."""
    program = analysis.program
    readwrite = {
        fn: function_read_write(analysis, fn)
        for fn in sorted(program.functions)
    }
    table = _LocTable(_collect_locations(analysis, readwrite))
    stmt_ids = _canonical_stmt_ids(program)
    payload = {
        "format_version": FORMAT_VERSION,
        "name": name,
        "options": asdict(analysis.options),
        "statements": program.count_basic_stmts(),
        "locations": table.encode(),
        "labels": {
            label: [func, stmt_ids[stmt_id]]
            for label, (func, stmt_id) in sorted(program.labels.items())
        },
        "stmt_func": {
            str(stmt_ids[stmt.stmt_id]): fn.name
            for fn in program.functions.values()
            for stmt in fn.iter_stmts()
        },
        "point_info": {
            str(stmt_ids[stmt_id]): _encode_triples(info, table)
            for stmt_id, info in sorted(analysis.point_info.items())
            if stmt_id in stmt_ids
        },
        "ig": _encode_ig(analysis.ig),
        "scopes": _encode_scopes(analysis),
        "globals": sorted(program.global_types),
        "functions": sorted(program.functions),
        "externals": sorted(program.externals),
        "readwrite": _encode_readwrite(readwrite, table, stmt_ids),
        "checkfacts": collect_facts(analysis).encode(stmt_ids),
        "warnings": list(analysis.warnings),
        "stats": analysis.stats.as_dict(),
        "summaries": _collect_summaries(analysis, name),
        "incremental": _encode_skeleton(program),
    }
    log = getattr(analysis, "provenance", None)
    if log is not None:
        # Optional section: present exactly when the producing run
        # recorded derivations, absent (not null) otherwise, so
        # provenance-off artifacts are byte-identical to pre-provenance
        # ones.
        payload["provenance"] = _encode_provenance(log, stmt_ids)
    if source is not None:
        payload["source_sha256"] = hashlib.sha256(
            source.encode()
        ).hexdigest()
    return payload


def _encode_skeleton(program) -> dict:
    """The v3 "incremental" section: everything the update planner
    needs to compute a dirty set against a future edit without the
    original program object."""
    from repro.core.incremental import skeleton

    return skeleton(program)


def encode_analysis_bytes(
    analysis, name: str = "<source>", source: str | None = None
) -> bytes:
    """Canonical byte serialization (stable across processes)."""
    return canonical_json(encode_analysis(analysis, name, source))


def canonical_json(payload: dict) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode()


def semantic_payload_bytes(
    analysis, name: str = "<source>", source: str | None = None
) -> bytes:
    """Canonical bytes of the *semantic* payload: the encoded analysis
    minus the run-shape counters (top-level ``stats`` and the perf
    summary), which legitimately differ between set representations
    and memoization protocols.  This is the byte-identity contract the
    bitset/worklist/slice core is held to against the dict and legacy
    cores — everything an analysis *means* (per-point triples,
    invocation graph, warnings, check facts, read/write summaries)
    with nothing about how fast it was computed."""
    payload = encode_analysis(analysis, name, source)
    payload.pop("stats", None)
    summaries = payload.get("summaries")
    if isinstance(summaries, dict):
        summaries.pop("perf", None)
    return canonical_json(payload)


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


class DecodedInvocationGraph:
    """An invocation graph rebuilt from a payload.

    Holds real :class:`~repro.core.invocation_graph.IGNode` objects, so
    the rendering/counting methods of the live class apply verbatim
    (they only traverse ``self.root``).
    """

    def __init__(self, root: IGNode, root_func: str):
        self.root = root
        self.root_func = root_func

    render = InvocationGraph.render
    to_dot = InvocationGraph.to_dot
    nodes = InvocationGraph.nodes
    node_count = InvocationGraph.node_count
    count_kind = InvocationGraph.count_kind
    functions_called = InvocationGraph.functions_called


def _decode_ig(encoded: list) -> DecodedInvocationGraph:
    nodes = [
        IGNode(func, IGNodeKind(kind)) for func, kind, _, _ in encoded
    ]
    for node, (_, _, partner, edges) in zip(nodes, encoded):
        if partner >= 0:
            node.rec_partner = nodes[partner]
        for site, child_index in edges:
            node.add_child(site, nodes[child_index])
    return DecodedInvocationGraph(nodes[0], nodes[0].func)


class DecodedProvenance:
    """A derivation log rebuilt from the ``"provenance"`` section.

    Exposes the read surface the witness helpers and query verbs need
    — ``records`` (real :class:`~repro.core.provenance.Derivation`
    tuples), ``latest``, ``kill_count``, ``symbolic_intros``,
    ``class_counts()`` — so :func:`repro.core.provenance.witness` and
    friends work on it verbatim.  ``latest`` is rebuilt by scanning
    records in order, which reproduces the live dict exactly: the
    recorder overwrites ``latest[(src, tgt)]`` on every append, so the
    last record per pair wins in both.

    Statement ids here are the payload's *canonical* ids (matching
    ``labels`` / ``point_info`` of the same payload), not the producing
    process's live ids.
    """

    def __init__(self, section: dict):
        version = section.get("version")
        if version != PROVENANCE_VERSION:
            raise ValueError(
                f"provenance section version {version!r} != "
                f"{PROVENANCE_VERSION}"
            )
        locs = [
            AbsLoc(base, LocKind(kind), func, tuple(path))
            for base, kind, func, path in section["locations"]
        ]
        self.records: list[Derivation] = [
            Derivation(
                src=locs[si],
                tgt=locs[ti],
                definite=bool(definite),
                rule=rule,
                stmt_id=stmt_id,
                func=func,
                path=tuple(path),
                parents=tuple(parents),
                extra=extra,
            )
            for si, ti, definite, rule, stmt_id, func, path, parents, extra
            in section["records"]
        ]
        self.latest: dict[tuple, int] = {
            (record.src, record.tgt): rid
            for rid, record in enumerate(self.records)
        }
        self.kill_count: int = section["kill_count"]
        self.symbolic_intros: list[dict] = section["symbolic_intros"]

    def class_counts(self) -> dict[str, int]:
        counts = {
            "gen": 0, "kill": self.kill_count, "weaken": 0, "transfer": 0
        }
        classify = CLASSIFICATION.get
        for record in self.records:
            counts[classify(record.rule, "transfer")] += 1
        return counts


class DecodedAnalysis:
    """A cached analysis result decoded from its JSON payload.

    Mirrors the query surface of
    :class:`~repro.core.analysis.PointsToAnalysis` — ``at_label``,
    ``at_stmt``, ``triples_at``, ``function_of_stmt``, ``labels``,
    ``ig``, ``warnings``, ``options``, ``stats`` — without holding a
    :class:`~repro.simple.ir.SimpleProgram` (``program`` is None).
    Name resolution and read/write sets come from the payload's scope
    tables and precomputed sets instead of the frontend.
    """

    #: Decoded results carry no program; callers that need statements
    #: must re-simplify the source (the query layer never does).
    program = None

    def __init__(self, payload: dict):
        version = payload.get("format_version")
        if version not in SUPPORTED_VERSIONS:
            raise ValueError(
                f"payload format version {version!r} not in "
                f"{sorted(SUPPORTED_VERSIONS)}"
            )
        self.payload = payload
        self.name: str = payload["name"]
        self.options = AnalysisOptions(**payload["options"])
        self.statements: int = payload["statements"]
        self._locs = [
            AbsLoc(base, LocKind(kind), func, tuple(path))
            for base, kind, func, path in payload["locations"]
        ]
        self.labels: dict[str, tuple[str, int]] = {
            label: (func, stmt_id)
            for label, (func, stmt_id) in payload["labels"].items()
        }
        self._stmt_func = {
            int(stmt_id): func
            for stmt_id, func in payload["stmt_func"].items()
        }
        self.point_info: dict[int, PointsToSet] = {
            int(stmt_id): PointsToSet.from_triples(
                (
                    self._locs[si],
                    self._locs[ti],
                    D if d == "D" else P,
                )
                for si, ti, d in triples
            )
            for stmt_id, triples in payload["point_info"].items()
        }
        self.ig = _decode_ig(payload["ig"])
        self.scopes: dict[str, dict] = payload["scopes"]
        self.globals: list[str] = payload["globals"]
        self.functions: list[str] = payload["functions"]
        self.externals: list[str] = payload["externals"]
        self.warnings: list[str] = list(payload["warnings"])
        stats = payload["stats"]
        # ``.get`` on the newer fields: payloads encoded before the
        # slice-keyed memo decode to zeroed counters.
        slice_stats = stats.get("slice", {})
        self.stats = MemoStats(
            hits=stats["hits"],
            misses=stats["misses"],
            evictions=stats["evictions"],
            recursion_truncations=stats["recursion_truncations"],
            truncated_functions=list(stats["truncated_functions"]),
            per_function={
                func: list(counters)
                for func, counters in stats.get("per_function", {}).items()
            },
            slice_hits=slice_stats.get("hits", 0),
            slice_lookups=slice_stats.get("lookups", 0),
            slice_key_pairs=slice_stats.get("key_pairs", 0),
            slice_passthrough_pairs=slice_stats.get(
                "passthrough_pairs", 0
            ),
        )
        self.summaries: dict = payload["summaries"]
        #: Program-shape facts for the checker framework (statement ids
        #: already canonical — the same id space as ``point_info``).
        self.checkfacts = CheckFacts.decode(payload["checkfacts"])
        #: Derivation log of the producing run (mirrors the live
        #: ``PointsToAnalysis.provenance`` attribute), or None when the
        #: payload was produced with provenance tracking off.
        self.provenance = (
            DecodedProvenance(payload["provenance"])
            if "provenance" in payload
            else None
        )
        #: The v3 incremental skeleton (fingerprints / deps / globals),
        #: or None for v2 payloads — updates against those plan cold.
        self.incremental: dict | None = payload.get("incremental")
        self._readwrite: dict[str, list[ReadWriteSets]] | None = None

    # -- the PointsToAnalysis query surface ------------------------------

    def at_label(self, label: str) -> PointsToSet:
        func, stmt_id = self.labels[label]
        info = self.point_info.get(stmt_id)
        if info is None:
            return PointsToSet()
        return info

    def at_stmt(self, stmt_id: int) -> PointsToSet | None:
        return self.point_info.get(stmt_id)

    def function_of_stmt(self, stmt_id: int) -> str | None:
        return self._stmt_func.get(stmt_id)

    def triples_at(
        self, label: str, skip_null: bool = True, skip_temps: bool = True
    ):
        result = []
        for src, tgt, definiteness in self.at_label(label).triples():
            if skip_null and tgt.is_null:
                continue
            if skip_temps and _is_temp_name(src.base):
                continue
            result.append((str(src), str(tgt), str(definiteness)))
        return sorted(result)

    # -- payload-backed extensions ---------------------------------------

    def resolve(self, name: str, func: str | None) -> AbsLoc | None:
        """Resolve a variable name in ``func``'s scope, mirroring
        :meth:`repro.core.env.FuncEnv.var_loc`'s precedence."""
        scope = self.scopes.get(func) if func else None
        if scope is not None:
            if name in scope["params"]:
                return AbsLoc(name, LocKind.PARAM, func)
            if name in scope["locals"]:
                return AbsLoc(name, LocKind.LOCAL, func)
            if name in scope["symbolics"]:
                return AbsLoc(name, LocKind.SYMBOLIC, func)
        if name in self.globals:
            return AbsLoc(name, LocKind.GLOBAL)
        if name in self.functions or name in self.externals:
            return AbsLoc(name, LocKind.FUNCTION)
        return None

    def read_write(self, func: str) -> list[ReadWriteSets]:
        if self._readwrite is None:
            self._readwrite = {
                fn: [
                    ReadWriteSets(
                        stmt_id=stmt_id,
                        func=fn,
                        must_write={self._locs[i] for i in must},
                        may_write={self._locs[i] for i in may},
                        reads={self._locs[i] for i in reads},
                    )
                    for stmt_id, must, may, reads in entries
                ]
                for fn, entries in self.payload["readwrite"].items()
            }
        return self._readwrite.get(func, [])


def decode_analysis(payload: dict | bytes | str) -> DecodedAnalysis:
    """Rebuild a queryable result from an encoded payload."""
    if isinstance(payload, (bytes, str)):
        payload = json.loads(payload)
    return DecodedAnalysis(payload)
