"""Pluggable object-storage backends for the result store.

The :class:`~repro.service.store.ResultStore` owns everything the
*analysis* cares about — content-addressed keys, canonical encoding,
corrupt-payload dropping, traffic counters — and delegates raw object
IO (opaque ``bytes`` under a hex key) to a :class:`StoreBackend`.
Three backends conform to the protocol:

* :class:`FileBackend` — the original on-disk layout
  (``<root>/objects/<k[:2]>/<k>.json``, atomic temp-file + rename
  writes), byte- and key-compatible with every pre-backend store;
* :class:`MemoryBackend` — a size-bounded in-process LRU, for daemons
  and tests that want warm objects without touching disk;
* :class:`SqliteBackend` — one ``objects`` table in a SQLite file,
  safe for concurrent writer processes (WAL + busy timeout, each
  ``put`` is one autocommitted upsert).

:class:`TieredBackend` composes a fast front (typically memory) over a
durable back as a read-through / write-through cache.

Backends are selected with URL-style configuration
(:func:`open_backend`)::

    file:/var/cache/repro-pta          on-disk store (also: bare paths)
    memory://                          unbounded in-memory store
    memory://?max_bytes=67108864       64 MiB LRU
    sqlite:/var/cache/repro-pta.db     sqlite store
    memory+file:/var/cache/repro-pta   read-through memory over file
    memory+sqlite:/var/cache/pta.db    read-through memory over sqlite

A bare filesystem path (no scheme) means ``file:`` — which is what
keeps ``--store DIR`` and the ``REPRO_PTA_STORE`` environment variable
backward compatible.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Iterable, Protocol, runtime_checkable
from urllib.parse import parse_qsl


class BackendError(ValueError):
    """A malformed backend URL or unusable backend configuration."""


@runtime_checkable
class StoreBackend(Protocol):
    """Raw object storage under hex keys.

    Values are opaque bytes; keys are content addresses computed by the
    store.  ``put`` must be atomic with respect to concurrent writers
    of the same key (readers see either the old or the new complete
    value, never a torn one) when :attr:`process_shared` is true.
    """

    #: URL that reopens this backend (workers in other processes use it).
    url: str
    #: True when independent processes opening :attr:`url` see one
    #: shared object space (file, sqlite); false for per-process
    #: backends (memory), which parallel drivers must not fan out over.
    process_shared: bool

    def has(self, key: str) -> bool: ...

    def get(self, key: str) -> bytes | None: ...

    def put(self, key: str, data: bytes) -> None: ...

    def delete(self, key: str) -> bool: ...

    def keys(self, prefix: str = "") -> list[str]:
        """Sorted keys, optionally restricted to a key-space prefix
        (e.g. ``"fn-"`` for per-function summary records)."""
        ...

    def clear(self) -> int: ...

    def entries(self) -> list[tuple[str, int, float]]:
        """``(key, size_bytes, mtime)`` rows, unordered."""
        ...

    def stats(self) -> dict:
        """Storage-level facts: at least ``backend``, ``url``,
        ``objects``, ``bytes``."""
        ...

    def flush(self) -> None: ...

    def close(self) -> None: ...


def _base_stats(backend: "StoreBackend") -> dict:
    entries = backend.entries()
    return {
        "backend": type(backend).__name__.removesuffix("Backend").lower(),
        "url": backend.url,
        "objects": len(entries),
        "bytes": sum(size for _, size, _ in entries),
    }


# ---------------------------------------------------------------------------
# Filesystem
# ---------------------------------------------------------------------------


class FileBackend:
    """The original on-disk layout: ``<root>/objects/<k[:2]>/<k>.json``.

    Writes are atomic (temp file + ``os.replace``), so concurrent
    writer processes racing on one key at worst duplicate work, never
    corrupt it.  Layout and bytes are identical to the pre-backend
    :class:`~repro.service.store.ResultStore`, so existing caches stay
    valid.
    """

    process_shared = True

    def __init__(self, root: Path | str):
        self.root = Path(root)

    @property
    def url(self) -> str:
        return f"file:{self.root}"

    def path_for(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def has(self, key: str) -> bool:
        return self.path_for(key).exists()

    def get(self, key: str) -> bytes | None:
        try:
            return self.path_for(key).read_bytes()
        except OSError:
            return None

    def put(self, key: str, data: bytes) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def delete(self, key: str) -> bool:
        try:
            self.path_for(key).unlink()
            return True
        except OSError:
            return False

    def keys(self, prefix: str = "") -> list[str]:
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(
            p.stem
            for p in objects.glob("*/*.json")
            if p.stem.startswith(prefix)
        )

    def clear(self) -> int:
        return sum(1 for key in self.keys() if self.delete(key))

    def entries(self) -> list[tuple[str, int, float]]:
        rows = []
        objects = self.root / "objects"
        if not objects.is_dir():
            return rows
        for path in objects.glob("*/*.json"):
            try:
                info = path.stat()
            except OSError:
                continue
            rows.append((path.stem, info.st_size, info.st_mtime))
        return rows

    def stats(self) -> dict:
        return _base_stats(self)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------------
# In-memory LRU
# ---------------------------------------------------------------------------


class MemoryBackend:
    """A thread-safe, size-bounded in-process LRU of raw objects.

    ``max_bytes`` / ``max_objects`` bound the cache (``None`` means
    unbounded); inserting past a bound evicts least-recently-used
    entries until it fits again.  One object larger than ``max_bytes``
    is refused outright (the cache stays within its bound rather than
    holding a single oversized entry).
    """

    process_shared = False

    def __init__(
        self,
        max_bytes: int | None = None,
        max_objects: int | None = None,
    ):
        self.max_bytes = max_bytes
        self.max_objects = max_objects
        self._objects: OrderedDict[str, tuple[bytes, float]] = OrderedDict()
        self._bytes = 0
        self.evictions = 0
        self._lock = threading.Lock()

    @property
    def url(self) -> str:
        params = []
        if self.max_bytes is not None:
            params.append(f"max_bytes={self.max_bytes}")
        if self.max_objects is not None:
            params.append(f"max_objects={self.max_objects}")
        return "memory://" + ("?" + "&".join(params) if params else "")

    def has(self, key: str) -> bool:
        with self._lock:
            return key in self._objects

    def get(self, key: str) -> bytes | None:
        with self._lock:
            entry = self._objects.get(key)
            if entry is None:
                return None
            self._objects.move_to_end(key)
            return entry[0]

    def put(self, key: str, data: bytes) -> None:
        with self._lock:
            old = self._objects.pop(key, None)
            if old is not None:
                self._bytes -= len(old[0])
            if self.max_bytes is not None and len(data) > self.max_bytes:
                return  # would evict everything and still not fit
            self._objects[key] = (data, time.time())
            self._bytes += len(data)
            self._evict()

    def _evict(self) -> None:
        while (
            self.max_objects is not None
            and len(self._objects) > self.max_objects
        ) or (self.max_bytes is not None and self._bytes > self.max_bytes):
            _, (dropped, _) = self._objects.popitem(last=False)
            self._bytes -= len(dropped)
            self.evictions += 1

    def delete(self, key: str) -> bool:
        with self._lock:
            entry = self._objects.pop(key, None)
            if entry is None:
                return False
            self._bytes -= len(entry[0])
            return True

    def keys(self, prefix: str = "") -> list[str]:
        with self._lock:
            return sorted(
                key for key in self._objects if key.startswith(prefix)
            )

    def clear(self) -> int:
        with self._lock:
            removed = len(self._objects)
            self._objects.clear()
            self._bytes = 0
            return removed

    def entries(self) -> list[tuple[str, int, float]]:
        with self._lock:
            return [
                (key, len(data), mtime)
                for key, (data, mtime) in self._objects.items()
            ]

    def stats(self) -> dict:
        result = _base_stats(self)
        result.update(
            max_bytes=self.max_bytes,
            max_objects=self.max_objects,
            evictions=self.evictions,
        )
        return result

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------------
# SQLite
# ---------------------------------------------------------------------------


class SqliteBackend:
    """One ``objects(key, data, mtime)`` table in a SQLite file.

    Connections are opened lazily per instance in autocommit mode, so
    every ``put`` is one atomic upsert; WAL journaling plus a busy
    timeout make concurrent writer *processes* safe (they serialize on
    the write lock instead of failing).
    """

    process_shared = True

    def __init__(self, path: Path | str):
        self.path = Path(path)
        self._local = threading.local()

    @property
    def url(self) -> str:
        return f"sqlite:{self.path}"

    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                self.path, timeout=10.0, isolation_level=None
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS objects ("
                " key TEXT PRIMARY KEY,"
                " data BLOB NOT NULL,"
                " mtime REAL NOT NULL)"
            )
            self._local.conn = conn
        return conn

    def has(self, key: str) -> bool:
        row = self._conn().execute(
            "SELECT 1 FROM objects WHERE key = ?", (key,)
        ).fetchone()
        return row is not None

    def get(self, key: str) -> bytes | None:
        row = self._conn().execute(
            "SELECT data FROM objects WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else bytes(row[0])

    def put(self, key: str, data: bytes) -> None:
        self._conn().execute(
            "INSERT INTO objects (key, data, mtime) VALUES (?, ?, ?) "
            "ON CONFLICT(key) DO UPDATE SET data = excluded.data, "
            "mtime = excluded.mtime",
            (key, data, time.time()),
        )

    def delete(self, key: str) -> bool:
        cursor = self._conn().execute(
            "DELETE FROM objects WHERE key = ?", (key,)
        )
        return cursor.rowcount > 0

    def keys(self, prefix: str = "") -> list[str]:
        # Range scan instead of LIKE: key prefixes here never contain
        # wildcard characters, but a range needs no escaping at all.
        if prefix:
            rows = self._conn().execute(
                "SELECT key FROM objects WHERE key >= ? AND key < ? "
                "ORDER BY key",
                (prefix, prefix[:-1] + chr(ord(prefix[-1]) + 1)),
            ).fetchall()
        else:
            rows = self._conn().execute(
                "SELECT key FROM objects ORDER BY key"
            ).fetchall()
        return [row[0] for row in rows]

    def clear(self) -> int:
        cursor = self._conn().execute("DELETE FROM objects")
        return cursor.rowcount

    def entries(self) -> list[tuple[str, int, float]]:
        rows = self._conn().execute(
            "SELECT key, length(data), mtime FROM objects"
        ).fetchall()
        return [(key, size, mtime) for key, size, mtime in rows]

    def stats(self) -> dict:
        return _base_stats(self)

    def flush(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.execute("PRAGMA wal_checkpoint(PASSIVE)")

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None


# ---------------------------------------------------------------------------
# Tiered composition
# ---------------------------------------------------------------------------


class TieredBackend:
    """A fast ``front`` over a durable ``back``.

    Reads check the front first and populate it from the back
    (read-through); writes land in both (write-through), so the back
    is always complete and the front never serves anything the back
    lost.  Deletes, ``keys`` and ``entries`` are authoritative on the
    back; ``process_shared`` follows the back (a per-process memory
    front is only a cache, it does not change the shared object
    space).
    """

    def __init__(self, front: StoreBackend, back: StoreBackend):
        self.front = front
        self.back = back

    @property
    def url(self) -> str:
        front_scheme = self.front.url.split(":", 1)[0]
        return f"{front_scheme}+{self.back.url}"

    @property
    def process_shared(self) -> bool:
        return self.back.process_shared

    def has(self, key: str) -> bool:
        return self.front.has(key) or self.back.has(key)

    def get(self, key: str) -> bytes | None:
        data = self.front.get(key)
        if data is not None:
            return data
        data = self.back.get(key)
        if data is not None:
            self.front.put(key, data)
        return data

    def put(self, key: str, data: bytes) -> None:
        self.back.put(key, data)
        self.front.put(key, data)

    def delete(self, key: str) -> bool:
        dropped_front = self.front.delete(key)
        return self.back.delete(key) or dropped_front

    def keys(self, prefix: str = "") -> list[str]:
        return self.back.keys(prefix)

    def clear(self) -> int:
        self.front.clear()
        return self.back.clear()

    def entries(self) -> list[tuple[str, int, float]]:
        return self.back.entries()

    def stats(self) -> dict:
        result = _base_stats(self)
        result["front"] = self.front.stats()
        result["back"] = self.back.stats()
        return result

    def flush(self) -> None:
        self.front.flush()
        self.back.flush()

    def close(self) -> None:
        self.front.close()
        self.back.close()


# ---------------------------------------------------------------------------
# URL-style configuration
# ---------------------------------------------------------------------------

_SCHEMES = ("file", "memory", "sqlite")


def _split_url(url: str) -> tuple[str, str, dict[str, str]]:
    """``scheme:rest?query`` -> (scheme, rest, query dict)."""
    scheme, _, rest = url.partition(":")
    rest, _, query = rest.partition("?")
    # Accept file:///x and memory:// spellings: '//' is decoration,
    # but a lone '/' after it is the path root and must survive.
    if rest.startswith("//"):
        rest = rest[2:]
        if not rest.startswith("/") and scheme != "memory" and rest:
            rest = "/" + rest
    return scheme, rest, dict(parse_qsl(query))


def _int_param(params: dict[str, str], name: str, url: str) -> int | None:
    raw = params.pop(name, None)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise BackendError(f"{url!r}: {name} must be an integer") from None


def open_backend(url: str | Path) -> StoreBackend:
    """Open the backend a URL (or bare filesystem path) names.

    Supported forms: ``file:PATH``, ``memory://[?max_bytes=N]
    [&max_objects=N]``, ``sqlite:PATH``, and the tiered
    ``memory+file:PATH`` / ``memory+sqlite:PATH`` read-through
    compositions (tier parameters apply to the memory front).  A bare
    path opens a :class:`FileBackend` rooted there.
    """
    if isinstance(url, Path):
        return FileBackend(url)
    text = str(url).strip()
    scheme = text.partition(":")[0]
    if "+" in scheme:
        front_scheme, _, back_scheme = scheme.partition("+")
        if front_scheme != "memory":
            raise BackendError(
                f"{text!r}: only a memory front tier is supported"
            )
        if back_scheme not in ("file", "sqlite"):
            raise BackendError(
                f"{text!r}: unknown back tier {back_scheme!r} "
                "(file or sqlite)"
            )
        _, rest, params = _split_url(text)
        max_bytes = _int_param(params, "max_bytes", text)
        max_objects = _int_param(params, "max_objects", text)
        if params:
            raise BackendError(
                f"{text!r}: unknown parameters {sorted(params)}"
            )
        back = open_backend(f"{back_scheme}:{rest}")
        return TieredBackend(
            MemoryBackend(max_bytes=max_bytes, max_objects=max_objects),
            back,
        )
    if scheme not in _SCHEMES:
        # No recognized scheme: treat the whole string as a path
        # (keeps --store DIR and REPRO_PTA_STORE=DIR working).
        return FileBackend(Path(text))
    scheme, rest, params = _split_url(text)
    if scheme == "file":
        if params:
            raise BackendError(f"{text!r}: file: takes no parameters")
        if not rest:
            raise BackendError(f"{text!r}: file: needs a directory path")
        return FileBackend(Path(rest))
    if scheme == "sqlite":
        if params:
            raise BackendError(f"{text!r}: sqlite: takes no parameters")
        if not rest:
            raise BackendError(f"{text!r}: sqlite: needs a database path")
        return SqliteBackend(Path(rest))
    if scheme == "memory":
        if rest:
            raise BackendError(
                f"{text!r}: memory:// takes no path (parameters only)"
            )
        max_bytes = _int_param(params, "max_bytes", text)
        max_objects = _int_param(params, "max_objects", text)
        if params:
            raise BackendError(
                f"{text!r}: unknown parameters {sorted(params)}"
            )
        return MemoryBackend(max_bytes=max_bytes, max_objects=max_objects)
    raise BackendError(f"unknown store backend URL {text!r}")


def backend_names() -> Iterable[str]:
    return _SCHEMES
