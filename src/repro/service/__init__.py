"""Demand-driven service layer over the exhaustive analysis.

The paper's algorithm (like most of its era) is *exhaustive*: one run
computes the points-to sets of every program point.  This package
turns that exhaustive result into something a tool can *ask questions
of* and *reuse across runs*:

* :mod:`repro.service.serialize` — a stable, versioned JSON encoding
  of a completed :class:`~repro.core.analysis.PointsToAnalysis`.  The
  payload is self-contained: labels, per-statement triples, the
  invocation graph, name-resolution scopes, read/write sets, and the
  Tables 2-6 summaries all travel with it, so answering a query from a
  cached result needs *no* re-parsing of the C source.
* :mod:`repro.service.store` — an on-disk, content-addressed result
  store keyed by ``sha256(source, options, format-version)``.
* :mod:`repro.service.queries` — a :class:`QuerySession` answering
  demand queries (``points_to``, ``may_alias``, ``callees_at``,
  ``callers_of``, ``read_write``) against a fresh or cached result.
* :mod:`repro.service.batch` — a parallel batch driver that fans out
  over files with ``multiprocessing`` workers and fills the store, and
  a JSON-lines ``serve`` loop for warm editor/tool sessions.
"""

from repro.service.serialize import (
    FORMAT_VERSION,
    DecodedAnalysis,
    decode_analysis,
    encode_analysis,
    encode_analysis_bytes,
)
from repro.service.store import ResultStore, StoreStats
from repro.service.queries import QueryError, QuerySession, parse_query
from repro.service.batch import BatchReport, run_batch, serve

__all__ = [
    "FORMAT_VERSION",
    "DecodedAnalysis",
    "decode_analysis",
    "encode_analysis",
    "encode_analysis_bytes",
    "ResultStore",
    "StoreStats",
    "QueryError",
    "QuerySession",
    "parse_query",
    "BatchReport",
    "run_batch",
    "serve",
]
