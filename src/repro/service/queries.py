"""Demand queries over a fresh or cached analysis result.

A :class:`QuerySession` wraps either a live
:class:`~repro.core.analysis.PointsToAnalysis` or a cached
:class:`~repro.service.serialize.DecodedAnalysis` and answers the same
questions against both — the test suite asserts the answers are
identical, which is what lets the store substitute cached results for
fresh ones.

The textual query language (used by ``repro-pta query`` and the
JSON-lines serve loop; see docs/SERVICE.md):

* ``points_to:EXPR@LABEL``     — targets of ``EXPR`` at a label;
  ``EXPR`` is ``*``\\ *depth* then a name, e.g. ``p``, ``**q``,
  ``main::p`` (explicit scope; default scope is the label's function).
* ``may_alias:EXPR,EXPR@LABEL`` — may the two expressions denote the
  same location at the label?
* ``callees_at:SITE``          — functions an (indirect) call-site may
  invoke, from the invocation graph.
* ``callers_of:FUNC``          — functions with an invocation-graph
  edge into ``FUNC``.
* ``read_write:FUNC``          — aggregated may/must write and read
  sets of ``FUNC``.
* ``explain:EXPR@LABEL``       — derivation witnesses for every pair
  traversed while resolving ``EXPR`` at the label (requires a result
  produced with ``perf.CONFIG.track_provenance`` on).
* ``why_possible:EXPR@LABEL``  — for each merely-possible pair on the
  walk, the earliest definite-to-possible weakening on its witness.
* ``blame_invisible:NAME``     — where the symbolic (invisible-
  variable) name ``NAME`` was introduced, and for which caller
  location, along which call path.
* ``labels`` / ``call_sites`` / ``warnings`` / ``graph`` / ``summary``
  — discovery helpers.

Every answer is JSON-serializable; per-session query counters are
surfaced through :func:`repro.core.statistics.collect_perf`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro import obs
from repro.core import provenance as prov_mod
from repro.core.aliases import may_alias as _may_alias
from repro.core.analysis import PointsToAnalysis
from repro.core.locations import HEAP, NULL, AbsLoc
from repro.core.pointsto import D, Definiteness, PointsToSet
from repro.core.statistics import QueryStats
from repro.service.serialize import DecodedAnalysis


class QueryError(ValueError):
    """A malformed query or one naming unknown entities."""


@dataclass(frozen=True)
class Query:
    """A parsed query: operation kind plus its operands."""

    kind: str
    args: tuple[str, ...] = ()
    label: str | None = None


_NO_ARG_KINDS = ("labels", "call_sites", "warnings", "graph", "summary")
_EXPR_RE = re.compile(r"^(\**)([A-Za-z_][\w$.\[\]]*(?:::[\w$.\[\]]+)?)$")


def parse_query(text: str) -> Query:
    """Parse the textual query language (see module docstring)."""
    text = text.strip()
    if text in _NO_ARG_KINDS:
        return Query(text)
    kind, sep, rest = text.partition(":")
    kind = kind.strip()
    if not sep or not rest.strip():
        raise QueryError(
            f"malformed query {text!r}: expected KIND:ARGS (one of "
            f"points_to, may_alias, explain, why_possible, "
            f"blame_invisible, callees_at, callers_of, read_write) "
            f"or a bare {', '.join(_NO_ARG_KINDS)}"
        )
    rest = rest.strip()
    label = None
    if kind in ("points_to", "may_alias", "explain", "why_possible"):
        rest, at, label = rest.rpartition("@")
        if not at or not rest or not label:
            raise QueryError(
                f"{kind} queries need a program point: {kind}:ARGS@LABEL"
            )
        label = label.strip()
    if kind in ("points_to", "explain", "why_possible"):
        return Query(kind, (rest.strip(),), label)
    if kind == "may_alias":
        parts = [part.strip() for part in rest.split(",")]
        if len(parts) != 2 or not all(parts):
            raise QueryError("may_alias takes exactly two expressions")
        return Query(kind, tuple(parts), label)
    if kind in ("callees_at", "callers_of", "read_write", "blame_invisible"):
        return Query(kind, (rest,))
    raise QueryError(f"unknown query kind {kind!r}")


def _parse_expr(expr: str) -> tuple[int, str | None, str]:
    """``**func::name`` -> (deref depth, scope or None, name)."""
    match = _EXPR_RE.match(expr.strip())
    if match is None:
        raise QueryError(f"malformed expression {expr!r}")
    stars, name = match.groups()
    scope = None
    if "::" in name:
        scope, _, name = name.partition("::")
    return len(stars), scope, name


class QuerySession:
    """Demand queries against one analysis result (fresh or cached)."""

    def __init__(
        self,
        analysis: PointsToAnalysis | DecodedAnalysis,
        source: str | None = None,
    ):
        self.analysis = analysis
        #: The source text this result was computed from, when known —
        #: what :meth:`update` diffs an edited source against.
        self.source = source
        self.stats = QueryStats()

    # -- uniform access to the two result forms ---------------------------

    @property
    def cached(self) -> bool:
        return isinstance(self.analysis, DecodedAnalysis)

    @property
    def labels(self) -> dict[str, tuple[str, int]]:
        if self.cached:
            return self.analysis.labels
        return self.analysis.program.labels

    def _at_label(self, label: str) -> PointsToSet:
        if label not in self.labels:
            known = ", ".join(sorted(self.labels)) or "<none>"
            raise QueryError(f"unknown label {label!r} (known: {known})")
        return self.analysis.at_label(label)

    def _resolve(
        self, name: str, func: str | None, pts: PointsToSet
    ) -> AbsLoc:
        if name == "heap":
            return HEAP
        if name == "NULL":
            return NULL
        loc = None
        if self.cached:
            loc = self.analysis.resolve(name, func)
        else:
            try:
                loc = self.analysis.env(func).var_loc(name)
            except KeyError:
                loc = None
        if loc is not None:
            return loc
        # Fall back to the locations that actually occur at the program
        # point — this is how symbolic (invisible-variable) names and
        # field/array paths like ``s.next`` or ``a[head]`` resolve.
        candidates = [
            candidate
            for candidate in pts.locations()
            if str(candidate) == name
            and (candidate.func is None or candidate.func == func)
        ]
        if candidates:
            return sorted(candidates, key=lambda c: c.func or "")[0]
        raise QueryError(
            f"unknown variable {name!r} in scope {func or '<global>'}"
        )

    def _ig_root(self):
        return self.analysis.ig.root

    # -- incremental update ------------------------------------------------

    def update(self, new_source: str, *, store=None):
        """Re-analyze an edited source *in place*, reusing as much of
        the session's current result as the incremental tiers can
        prove safe (see :mod:`repro.core.incremental`).

        Afterwards the session answers queries against the new result
        (a cached session becomes live), ``self.source`` tracks the
        new text, and the returned
        :class:`~repro.core.incremental.UpdateReport` says which tier
        ran and what it reused.  ``store`` optionally supplies
        per-function summary records for cached sessions with no live
        capture."""
        from repro.core.incremental import update_analysis

        self.stats.record("update")
        analysis, report = update_analysis(
            self.analysis,
            self.source,
            new_source,
            getattr(self.analysis, "options", None),
            store=store,
        )
        self.analysis = analysis
        self.source = new_source
        return report

    # -- the query API -----------------------------------------------------

    def _traverse(self, expr: str, label: str):
        """Resolve ``expr`` at ``label`` and walk its dereference
        chain, collecting every points-to pair consumed on the way.

        Returns ``(function, traversed pairs, final frontier)``; the
        pairs are ``(src, tgt, definiteness)`` triples in traversal
        order (outermost level first), the frontier maps the chain's
        final targets to their composed definiteness.
        """
        pts = self._at_label(label)
        depth, scope, name = _parse_expr(expr)
        func = scope if scope is not None else self.labels[label][0]
        base = self._resolve(name, func, pts)
        # ``p`` is one dereference hop (what p points to); each ``*``
        # adds another.  NULL is reported but never traversed through.
        traversed: list[tuple[AbsLoc, AbsLoc, Definiteness]] = []
        frontier: dict[AbsLoc, Definiteness] = {base: D}
        for _ in range(depth + 1):
            next_frontier: dict[AbsLoc, Definiteness] = {}
            for loc, definiteness in frontier.items():
                if loc.is_null:
                    continue
                for tgt, d in pts.targets_of(loc):
                    traversed.append((loc, tgt, d))
                    combined = definiteness.both(d)
                    prev = next_frontier.get(tgt)
                    if prev is None or (prev is not D and combined is D):
                        next_frontier[tgt] = combined
            frontier = next_frontier
        return func, traversed, frontier

    def points_to(
        self, expr: str, label: str, skip_null: bool = False
    ) -> list[tuple[str, str]]:
        """Targets of ``expr`` at ``label`` as sorted (target, D|P)
        pairs.  ``expr`` may dereference (``*p``) — definiteness
        composes along the chain (Table 1's ``d1 ∧ d2``)."""
        self.stats.record("points_to")
        _, _, frontier = self._traverse(expr, label)
        return sorted(
            (str(tgt), str(d))
            for tgt, d in frontier.items()
            if not (skip_null and tgt.is_null)
        )

    # -- the explain family (provenance-backed) ---------------------------

    def _provenance(self):
        log = getattr(self.analysis, "provenance", None)
        if log is None:
            raise QueryError(
                "no derivation log on this result: analyze with "
                "perf.CONFIG.track_provenance on (CLI: analyze "
                "--explain; see docs/PROVENANCE.md)"
            )
        return log

    @staticmethod
    def _witness_step(rid: int, record) -> dict:
        """One witness step as a JSON-safe dict.  ``stmt`` is the live
        statement id on a fresh result and the payload's canonical id
        on a cached one (matching that payload's own labels)."""
        step = {
            "id": rid,
            "src": str(record.src),
            "tgt": str(record.tgt),
            "definiteness": "D" if record.definite else "P",
            "rule": record.rule,
            "class": record.classification,
            "stmt": record.stmt_id,
            "func": record.func,
            "path": list(record.path),
        }
        if record.extra:
            step["extra"] = dict(record.extra)
        if len(record.parents) > 1:
            step["other_parents"] = list(record.parents[1:])
        return step

    def explain(self, expr: str, label: str) -> dict:
        """Derivation witnesses for every pair the ``expr`` walk at
        ``label`` traverses: how each fact came to be, back to a
        source-level assignment, across map/unmap boundaries."""
        self.stats.record("explain")
        log = self._provenance()
        func, traversed, frontier = self._traverse(expr, label)
        pairs = []
        seen: set[tuple] = set()
        for src, tgt, d in traversed:
            if (src, tgt) in seen:
                continue
            seen.add((src, tgt))
            chain = prov_mod.witness(log, src, tgt)
            pairs.append(
                {
                    "src": str(src),
                    "tgt": str(tgt),
                    "definiteness": str(d),
                    "witness": [
                        self._witness_step(rid, record)
                        for rid, record in chain
                    ],
                }
            )
        pairs.sort(key=lambda entry: (entry["src"], entry["tgt"]))
        return {
            "expr": expr,
            "label": label,
            "function": func,
            "targets": sorted(
                [str(tgt), str(d)] for tgt, d in frontier.items()
            ),
            "pairs": pairs,
        }

    def why_possible(self, expr: str, label: str) -> dict:
        """For each merely-possible pair on the ``expr`` walk, the
        earliest definite-to-possible weakening on its witness chain
        (or the fact that it was born possible at its source)."""
        self.stats.record("why_possible")
        log = self._provenance()
        func, traversed, _ = self._traverse(expr, label)
        pairs = []
        seen: set[tuple] = set()
        for src, tgt, d in traversed:
            if d is D or (src, tgt) in seen:
                continue
            seen.add((src, tgt))
            entry: dict = {"src": str(src), "tgt": str(tgt)}
            weakening = prov_mod.first_weakening(log, src, tgt)
            if weakening is not None:
                entry["weakening"] = self._witness_step(*weakening)
            else:
                entry["born_possible"] = True
            pairs.append(entry)
        pairs.sort(key=lambda entry: (entry["src"], entry["tgt"]))
        return {
            "expr": expr,
            "label": label,
            "function": func,
            "pairs": pairs,
        }

    def blame_invisible(self, name: str) -> list[dict]:
        """Where the symbolic (invisible-variable) name ``name`` was
        introduced: which caller location it represents, through which
        access path, along which invocation-graph path."""
        self.stats.record("blame_invisible")
        log = self._provenance()
        intros = [
            dict(intro)
            for intro in log.symbolic_intros
            if intro["name"] == name or intro["base"] == name
        ]
        if not intros:
            known = ", ".join(
                sorted({intro["name"] for intro in log.symbolic_intros})
            ) or "<none>"
            raise QueryError(
                f"no invisible variable {name!r} was introduced "
                f"(known: {known})"
            )
        return intros

    def may_alias(self, x_expr: str, y_expr: str, label: str) -> bool:
        """May the two expressions denote the same location at
        ``label``?  Reuses :func:`repro.core.aliases.may_alias`."""
        self.stats.record("may_alias")
        pts = self._at_label(label)
        func = self.labels[label][0]
        depth_x, scope_x, name_x = _parse_expr(x_expr)
        depth_y, scope_y, name_y = _parse_expr(y_expr)
        x = self._resolve(name_x, scope_x or func, pts)
        y = self._resolve(name_y, scope_y or func, pts)
        return _may_alias(pts, x, y, depth_x, depth_y)

    def callees_at(self, call_site: int) -> list[str]:
        """Functions the invocation graph binds at ``call_site``."""
        self.stats.record("callees_at")
        callees: set[str] = set()
        for node in self._ig_root().walk():
            callees.update(node.children.get(call_site, ()))
        return sorted(callees)

    def callers_of(self, func: str) -> list[str]:
        """Functions with an invocation-graph edge into ``func``."""
        self.stats.record("callers_of")
        callers: set[str] = set()
        for node in self._ig_root().walk():
            for by_callee in node.children.values():
                if func in by_callee:
                    callers.add(node.func)
        return sorted(callers)

    def read_write(self, func: str) -> dict:
        """Aggregated read/write sets of ``func`` (union over its
        reachable statements, via :mod:`repro.core.readwrite`)."""
        self.stats.record("read_write")
        if self.cached:
            if func not in self.analysis.payload["readwrite"]:
                raise QueryError(f"unknown function {func!r}")
            sets_list = self.analysis.read_write(func)
        else:
            from repro.core.readwrite import function_read_write

            if func not in self.analysis.program.functions:
                raise QueryError(f"unknown function {func!r}")
            sets_list = function_read_write(self.analysis, func)
        must, may, reads = set(), set(), set()
        for sets in sets_list:
            must |= sets.must_write
            may |= sets.may_write
            reads |= sets.reads
        return {
            "function": func,
            "statements": len(sets_list),
            "must_write": sorted(str(loc) for loc in must),
            "may_write": sorted(str(loc) for loc in may),
            "reads": sorted(str(loc) for loc in reads),
        }

    def call_sites(self) -> dict[int, list[str]]:
        """call-site id -> callees bound there (from the graph)."""
        self.stats.record("call_sites")
        sites: dict[int, set[str]] = {}
        for node in self._ig_root().walk():
            for site, by_callee in node.children.items():
                sites.setdefault(site, set()).update(by_callee)
        return {site: sorted(sites[site]) for site in sorted(sites)}

    def list_labels(self) -> dict[str, list]:
        self.stats.record("labels")
        return {
            label: [func, stmt_id]
            for label, (func, stmt_id) in sorted(self.labels.items())
        }

    # -- textual evaluation -----------------------------------------------

    def evaluate(self, text: str | Query):
        """Evaluate a textual query; returns a JSON-safe answer.

        Each evaluation is timed through :func:`repro.obs.timed`:
        under an active tracer every query contributes a
        ``service.query`` span and latency-histogram entry (tagged
        with the query kind and whether the backing result is a
        cached decode)."""
        query = parse_query(text) if isinstance(text, str) else text
        with obs.timed("service.query", kind=query.kind, cached=self.cached):
            return self._dispatch(query)

    def _dispatch(self, query: Query):
        if query.kind == "points_to":
            return self.points_to(query.args[0], query.label)
        if query.kind == "may_alias":
            return self.may_alias(query.args[0], query.args[1], query.label)
        if query.kind == "explain":
            return self.explain(query.args[0], query.label)
        if query.kind == "why_possible":
            return self.why_possible(query.args[0], query.label)
        if query.kind == "blame_invisible":
            return self.blame_invisible(query.args[0])
        if query.kind == "callees_at":
            try:
                site = int(query.args[0])
            except ValueError:
                raise QueryError(
                    f"callees_at needs a call-site id, got {query.args[0]!r}"
                ) from None
            return self.callees_at(site)
        if query.kind == "callers_of":
            return self.callers_of(query.args[0])
        if query.kind == "read_write":
            return self.read_write(query.args[0])
        if query.kind == "call_sites":
            return {
                str(site): callees
                for site, callees in self.call_sites().items()
            }
        if query.kind == "labels":
            return self.list_labels()
        if query.kind == "warnings":
            self.stats.record("warnings")
            return list(self.analysis.warnings)
        if query.kind == "graph":
            self.stats.record("graph")
            return self.analysis.ig.render()
        if query.kind == "summary":
            self.stats.record("summary")
            return self.summary()
        raise QueryError(f"unknown query kind {query.kind!r}")

    def summary(self) -> dict:
        ig = self.analysis.ig
        return {
            "cached": self.cached,
            "labels": len(self.labels),
            "ig_nodes": ig.node_count(),
            "warnings": len(self.analysis.warnings),
            "queries": self.stats.as_dict(),
        }
