"""Prometheus text exposition (version 0.0.4) of a metrics snapshot.

Naming conventions (documented in docs/OBSERVABILITY.md):

* every series carries the ``repro_`` namespace prefix;
* dotted tracer names map to underscores (``daemon.queue_depth`` →
  ``repro_daemon_queue_depth``);
* counters get the ``_total`` suffix (``daemon.requests`` →
  ``repro_daemon_requests_total``);
* gauges keep their sanitized name;
* histograms record seconds and expose the conventional
  ``_seconds_bucket{le="..."}`` cumulative series plus
  ``_seconds_sum`` / ``_seconds_count``.

The renderer emits ``# HELP`` / ``# TYPE`` headers per family, and
:func:`parse_exposition` is a strict well-formedness checker used by
the CI smoke step and the endpoint tests — no Prometheus client
library required (and none is installed).
"""

from __future__ import annotations

import re

__all__ = ["parse_exposition", "render_prometheus", "sanitize"]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_]")

#: Exposition line shapes accepted by the validator.
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[^ ]+)( [0-9]+)?$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def sanitize(name: str, namespace: str = "repro") -> str:
    """A metric name safe for the exposition format."""
    cleaned = _BAD_CHARS.sub("_", name).strip("_")
    candidate = f"{namespace}_{cleaned}" if namespace else cleaned
    if not _NAME_OK.match(candidate):
        candidate = f"{namespace}_metric"
    return candidate


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _format_bound(bound: float) -> str:
    text = repr(float(bound))
    return text


def render_prometheus(
    snapshot: dict,
    namespace: str = "repro",
    extra_gauges: dict | None = None,
) -> str:
    """Render a (possibly merged) tracer snapshot as exposition text.

    ``extra_gauges`` lets callers add synthetic series (session
    counts, worker counts) that live outside the tracer.  Counter
    names that collide after sanitization are summed — the format
    forbids duplicate samples.
    """
    lines: list[str] = []

    counters: dict[str, float] = {}
    for name, value in snapshot.get("counters", {}).items():
        series = sanitize(name, namespace) + "_total"
        counters[series] = counters.get(series, 0) + value
    for series in sorted(counters):
        lines.append(f"# HELP {series} Cumulative event count.")
        lines.append(f"# TYPE {series} counter")
        lines.append(f"{series} {_format_value(counters[series])}")

    gauges: dict[str, float] = {}
    for name, value in snapshot.get("gauges", {}).items():
        gauges[sanitize(name, namespace)] = value
    for name, value in (extra_gauges or {}).items():
        gauges[sanitize(name, namespace)] = value
    for series in sorted(gauges):
        lines.append(f"# HELP {series} Last-observed value.")
        lines.append(f"# TYPE {series} gauge")
        lines.append(f"{series} {_format_value(gauges[series])}")

    for name in sorted(snapshot.get("histograms", {})):
        entry = snapshot["histograms"][name]
        series = sanitize(name, namespace) + "_seconds"
        lines.append(
            f"# HELP {series} Latency distribution in seconds."
        )
        lines.append(f"# TYPE {series} histogram")
        bounds = entry.get("bucket_bounds_s", [])
        buckets = entry.get("buckets", [])
        cumulative = 0
        for bound, bucket in zip(bounds, buckets):
            cumulative += bucket
            lines.append(
                f'{series}_bucket{{le="{_format_bound(bound)}"}} '
                f"{cumulative}"
            )
        total = entry.get("count", 0)
        lines.append(f'{series}_bucket{{le="+Inf"}} {total}')
        lines.append(f"{series}_sum {_format_value(entry.get('sum_s', 0.0))}")
        lines.append(f"{series}_count {total}")

    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> dict:
    """Strictly parse exposition text; raises ``ValueError`` on any
    malformed line.  Returns ``{family: {"type": ..., "samples":
    [(name, labels, value)]}}`` for assertions over series presence.

    Checks the invariants scrapers rely on: every sample belongs to a
    ``# TYPE``-declared family, histogram ``le`` buckets are cumulative
    and end with ``+Inf``, ``_count`` equals the ``+Inf`` bucket, and
    no duplicate (name, labels) sample appears.
    """
    families: dict[str, dict] = {}
    current: str | None = None
    seen: set[tuple[str, str]] = set()
    if not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    for line_no, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
                "summary",
                "untyped",
            ):
                raise ValueError(f"line {line_no}: bad TYPE line: {line!r}")
            current = parts[2]
            if current in families:
                raise ValueError(
                    f"line {line_no}: duplicate TYPE for {current}"
                )
            families[current] = {"type": parts[3], "samples": []}
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {line_no}: malformed sample: {line!r}")
        name = match.group("name")
        labels_text = match.group("labels") or ""
        labels = dict(_LABEL.findall(labels_text[1:-1])) if labels_text else {}
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"line {line_no}: bad value in {line!r}"
            ) from exc
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base is not None and base in families:
                family = base
                break
        if family not in families:
            raise ValueError(
                f"line {line_no}: sample {name!r} outside any TYPE family"
            )
        sample_key = (name, labels_text)
        if sample_key in seen:
            raise ValueError(f"line {line_no}: duplicate sample {name!r}")
        seen.add(sample_key)
        families[family]["samples"].append((name, labels, value))

    for family, data in families.items():
        if data["type"] != "histogram":
            if not data["samples"]:
                raise ValueError(f"family {family}: TYPE with no samples")
            continue
        buckets = [
            (labels.get("le"), value)
            for name, labels, value in data["samples"]
            if name == f"{family}_bucket"
        ]
        if not buckets or buckets[-1][0] != "+Inf":
            raise ValueError(
                f"family {family}: histogram must end with an +Inf bucket"
            )
        values = [value for _, value in buckets]
        if values != sorted(values):
            raise ValueError(
                f"family {family}: histogram buckets must be cumulative"
            )
        counts = [
            value
            for name, _, value in data["samples"]
            if name == f"{family}_count"
        ]
        if len(counts) != 1 or counts[0] != values[-1]:
            raise ValueError(
                f"family {family}: _count must equal the +Inf bucket"
            )
    return families
