"""Request-scoped distributed traces: ids, the bounded buffer, rendering.

A *trace document* is the JSON-safe record of one protocol request::

    {"trace_version": 1, "trace_id": "a1b2...", "transport": "tcp",
     "slow": false,
     "spans": [...Span.to_dict trees...],
     "metrics": {...tracer snapshot of the request...}}

The client opts in per request (``{"trace": true}`` or ``{"trace":
"<id>"}``); the daemon assigns an id at admission, carries it through
the coalescing map into the forked worker, captures the worker-side
span tree there, and merges it under the server-side
``daemon.admission`` / ``daemon.queue`` / ``daemon.worker`` spans —
one request, one coherent tree.  Finished documents live in a bounded
:class:`TraceBuffer`, drained by ``{"cmd": "trace", "trace_id": ...}``
and rendered by ``repro-pta daemon-trace``.
"""

from __future__ import annotations

import threading
import uuid
from collections import OrderedDict

__all__ = [
    "TraceBuffer",
    "new_trace_id",
    "render_trace",
    "synthetic_span",
]

#: Wire-format version of trace documents.
TRACE_VERSION = 1


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


def synthetic_span(
    name: str,
    start_s: float,
    duration_s: float | None,
    attrs: dict | None = None,
    children: list[dict] | None = None,
) -> dict:
    """Build one span dict (the :meth:`Span.to_dict` shape) directly —
    how the daemon front end materializes admission/queue/worker spans
    from timestamps it already collected, without running a tracer on
    the hot path."""
    span: dict = {
        "name": name,
        "start_s": round(max(0.0, start_s), 6),
        "duration_s": (
            round(max(0.0, duration_s), 6) if duration_s is not None else None
        ),
    }
    if attrs:
        span["attrs"] = dict(sorted(attrs.items()))
    if children:
        span["children"] = children
    return span


class TraceBuffer:
    """A thread-safe bounded ring of finished trace documents."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("TraceBuffer capacity must be >= 1")
        self.capacity = capacity
        self._docs: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._docs)

    def put(self, trace_id: str, document: dict) -> None:
        with self._lock:
            self._docs[trace_id] = document
            self._docs.move_to_end(trace_id)
            while len(self._docs) > self.capacity:
                self._docs.popitem(last=False)

    def get(self, trace_id: str) -> dict | None:
        with self._lock:
            return self._docs.get(trace_id)

    def ids(self) -> list[str]:
        """Retained trace ids, oldest first."""
        with self._lock:
            return list(self._docs)

    def answer(self, trace_id) -> dict:
        """The protocol response for ``{"cmd": "trace", "trace_id": X}``:
        the document, or a structured unknown-id error naming recently
        retained ids (the ring is bounded — old traces get pruned)."""
        if not isinstance(trace_id, str) or not trace_id:
            return {
                "ok": False,
                "error": f"bad trace id: expected a non-empty string, "
                f"got {trace_id!r}",
                "hint": 'request a trace with {"trace": true}; the '
                "response's trace_id keys this buffer",
            }
        with self._lock:
            document = self._docs.get(trace_id)
            recent = list(self._docs)[-5:]
        if document is None:
            return {
                "ok": False,
                "error": f"unknown trace id {trace_id!r} (not recorded, "
                f"or pruned from the bounded trace buffer)",
                "trace_id": trace_id,
                "known_ids": recent,
                "hint": 'request a trace with {"trace": true}; the '
                "buffer keeps the most recent "
                f"{self.capacity} traces",
            }
        return {"ok": True, "result": document}


def render_trace(spans: list[dict], indent: int = 0) -> str:
    """An indented text tree over span dicts (mirrors
    :meth:`Tracer.render`, but works on the wire format)."""
    lines: list[str] = []

    def walk(span: dict, depth: int) -> None:
        duration = span.get("duration_s")
        rendered_duration = (
            f"{duration * 1000:.3f}ms" if duration is not None else "<open>"
        )
        attrs = ""
        if span.get("attrs"):
            rendered = ", ".join(
                f"{key}={value}"
                for key, value in sorted(span["attrs"].items())
            )
            attrs = f"  [{rendered}]"
        lines.append(
            f"{'  ' * depth}{span.get('name', '?')}  "
            f"{rendered_duration}{attrs}"
        )
        for child in span.get("children", ()):
            walk(child, depth + 1)

    for root in spans:
        walk(root, indent)
    return "\n".join(lines)
