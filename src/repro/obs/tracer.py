"""Span-based tracing and metrics primitives (zero dependencies).

A :class:`Tracer` records three kinds of runtime signal:

* **Spans** — nested, named time intervals forming a tree per
  top-level operation (``frontend.parse`` inside ``analyze``, ...).
  Spans carry JSON-safe attributes and are opened/closed either
  through the :meth:`Tracer.span` context manager (structurally
  balanced) or the explicit :meth:`Tracer.start_span` /
  :meth:`Tracer.end_span` pair (imbalance raises
  :class:`TraceImbalance`).
* **Counters / gauges** — monotonically accumulated event counts
  (``analysis.memo_hits``) and last-value-wins measurements
  (``analysis.ig_nodes``).
* **Histograms** — log-scale latency distributions
  (``service.query``), recorded in seconds.

A :class:`NullTracer` provides the same interface with every method a
no-op and ``enabled`` False; it is the default process-wide tracer
(see :mod:`repro.obs`), so instrumentation hooks on hot paths cost one
attribute check when tracing is off.

Everything a tracer reports (:meth:`Tracer.events`,
:meth:`Tracer.snapshot`, :meth:`Tracer.render`) is built from plain
dicts/lists/strings/numbers, so it serializes with :mod:`json`
directly — the ``analyze --trace=json`` event log and the serve-loop
``metrics`` response are exactly these structures (see
docs/OBSERVABILITY.md for the schema).
"""

from __future__ import annotations

import time


class TraceImbalance(RuntimeError):
    """Span begin/end calls did not nest properly."""


class Span:
    """One named time interval in a trace tree."""

    __slots__ = ("name", "attrs", "start", "duration", "children")

    def __init__(self, name: str, attrs: dict, start: float):
        self.name = name
        self.attrs = attrs
        self.start = start
        self.duration: float | None = None  # None while still open
        self.children: list[Span] = []

    def annotate(self, **attrs) -> "Span":
        """Attach attributes after the span has been opened."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        result: dict = {
            "name": self.name,
            "start_s": round(self.start, 6),
            "duration_s": (
                round(self.duration, 6) if self.duration is not None else None
            ),
        }
        if self.attrs:
            result["attrs"] = dict(sorted(self.attrs.items()))
        if self.children:
            result["children"] = [child.to_dict() for child in self.children]
        return result


class Histogram:
    """A log-scale latency histogram over seconds.

    Bucket *i* counts observations at most ``BOUNDS[i]``; the last
    bucket is unbounded.  Tracks count/sum/min/max exactly, so the
    mean is always available regardless of bucket resolution.
    """

    #: Upper bounds in seconds: 10µs ... 100s, one decade per bucket.
    BOUNDS = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self):
        self.buckets = [0] * (len(self.BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, seconds: float) -> None:
        index = 0
        for bound in self.BOUNDS:
            if seconds <= bound:
                break
            index += 1
        self.buckets[index] += 1
        self.count += 1
        self.total += seconds
        self.min = seconds if self.min is None else min(self.min, seconds)
        self.max = seconds if self.max is None else max(self.max, seconds)

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum_s": round(self.total, 6),
            "mean_s": round(self.total / self.count, 6) if self.count else 0.0,
            "min_s": round(self.min, 6) if self.min is not None else None,
            "max_s": round(self.max, 6) if self.max is not None else None,
            "bucket_bounds_s": list(self.BOUNDS),
            "buckets": list(self.buckets),
        }

    def merge_dict(self, other: dict) -> None:
        """Fold a serialized histogram (:meth:`as_dict` shape) into
        this one, bucket-wise.  Bounds must agree — merging histograms
        recorded against different decades would silently misbin."""
        bounds = other.get("bucket_bounds_s")
        if bounds is not None and tuple(bounds) != self.BOUNDS:
            raise ValueError(
                f"histogram bucket bounds differ: {bounds} vs {self.BOUNDS}"
            )
        for index, value in enumerate(other.get("buckets", ())):
            self.buckets[index] += value
        self.count += other.get("count", 0)
        self.total += other.get("sum_s", 0.0)
        other_min = other.get("min_s")
        if other_min is not None:
            self.min = (
                other_min if self.min is None else min(self.min, other_min)
            )
        other_max = other.get("max_s")
        if other_max is not None:
            self.max = (
                other_max if self.max is None else max(self.max, other_max)
            )


class _SpanContext:
    """Context manager opening/closing one span on a tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer.start_span(self._name, **self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.annotate(error=exc_type.__name__)
        self._tracer.end_span(self._span)
        return False


class Tracer:
    """Collects spans, counters, gauges, and histograms for one run."""

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self.counters: dict[str, int | float] = {}
        self.gauges: dict[str, int | float] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- spans -------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of currently-open spans."""
        return len(self._stack)

    def span(self, name: str, /, **attrs) -> _SpanContext:
        """Context manager for a balanced span."""
        return _SpanContext(self, name, attrs)

    def start_span(self, name: str, /, **attrs) -> Span:
        span = Span(name, attrs, self._clock() - self._epoch)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end_span(self, span: Span | None = None) -> Span:
        """Close the innermost open span.

        Passing ``span`` asserts it *is* the innermost one;  a
        mismatch (ends crossing, ending an unopened span, ending with
        nothing open) raises :class:`TraceImbalance`.
        """
        if not self._stack:
            raise TraceImbalance("end_span with no span open")
        top = self._stack[-1]
        if span is not None and span is not top:
            raise TraceImbalance(
                f"unbalanced spans: tried to end {span.name!r} but the "
                f"innermost open span is {top.name!r}"
            )
        self._stack.pop()
        top.duration = (self._clock() - self._epoch) - top.start
        return top

    def check_balanced(self) -> None:
        """Raise :class:`TraceImbalance` if any span is still open."""
        if self._stack:
            names = " > ".join(span.name for span in self._stack)
            raise TraceImbalance(f"spans still open: {names}")

    # -- metrics -----------------------------------------------------------

    def count(self, name: str, n: int | float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: int | float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(seconds)

    # -- reporting ---------------------------------------------------------

    def events(self) -> list[dict]:
        """The span forest as JSON-safe nested dicts."""
        return [root.to_dict() for root in self.roots]

    def snapshot(self) -> dict:
        """Counters, gauges, and histograms as one JSON-safe dict."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def render(self) -> str:
        """The span forest as an indented text tree with durations."""
        lines: list[str] = []

        def walk(span: Span, depth: int) -> None:
            duration = (
                f"{span.duration * 1000:.3f}ms"
                if span.duration is not None
                else "<open>"
            )
            attrs = ""
            if span.attrs:
                rendered = ", ".join(
                    f"{key}={value}"
                    for key, value in sorted(span.attrs.items())
                )
                attrs = f"  [{rendered}]"
            lines.append(f"{'  ' * depth}{span.name}  {duration}{attrs}")
            for child in span.children:
                walk(child, depth + 1)

        for root in self.roots:
            walk(root, 0)
        return "\n".join(lines)


class _NullSpan:
    """Shared inert span: annotate() accepted and discarded."""

    __slots__ = ()
    name = "<null>"
    attrs: dict = {}
    children: list = []
    start = 0.0
    duration = 0.0

    def annotate(self, **attrs) -> "_NullSpan":
        return self

    def to_dict(self) -> dict:
        return {}


_NULL_SPAN = _NullSpan()


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """The do-nothing tracer installed when tracing is off.

    Every method exists and is safe to call; ``enabled`` is False so
    call-sites can skip building attribute dicts entirely.
    """

    enabled = False
    depth = 0

    def span(self, name: str, /, **attrs) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def start_span(self, name: str, /, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def end_span(self, span=None) -> _NullSpan:
        return _NULL_SPAN

    def check_balanced(self) -> None:
        pass

    def count(self, name: str, n: int | float = 1) -> None:
        pass

    def gauge(self, name: str, value: int | float) -> None:
        pass

    def observe(self, name: str, seconds: float) -> None:
        pass

    def events(self) -> list[dict]:
        return []

    def snapshot(self) -> dict:
        return {}

    def render(self) -> str:
        return ""


class MetricsTracer(Tracer):
    """A tracer that accumulates counters/gauges/histograms but keeps
    spans off.

    This is the process-wide tracer a long-lived daemon worker
    installs: metrics accumulate forever in bounded space, while span
    trees — which grow without bound and only matter per-request —
    are skipped entirely.  Per-request tracing temporarily installs a
    full :class:`Tracer` on top and folds its metrics back in (see
    :func:`repro.obs.merge.fold_snapshot`).
    """

    def span(self, name: str, /, **attrs) -> "_NullSpanContext":
        return _NULL_SPAN_CONTEXT

    def start_span(self, name: str, /, **attrs) -> "_NullSpan":
        return _NULL_SPAN

    def end_span(self, span=None) -> "_NullSpan":
        return _NULL_SPAN

    @property
    def depth(self) -> int:
        return 0

    def check_balanced(self) -> None:
        pass

    def events(self) -> list[dict]:
        return []


#: The shared default tracer (see :mod:`repro.obs`).
NULL_TRACER = NullTracer()
