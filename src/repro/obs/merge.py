"""Merge semantics for metrics snapshots from many processes.

The daemon shards requests over forked workers, so every worker
accumulates its own tracer state.  One coherent ``{"cmd": "metrics"}``
answer needs well-defined merge rules over the JSON-safe snapshot
shape (:meth:`repro.obs.tracer.Tracer.snapshot`):

* **counters** — sum.  Counters are monotone event counts, so the
  merged counter is the count over the union of the processes.
* **gauges** — last write wins, *with source*: the merged value is the
  value from the last-listed source that set it, and
  ``gauge_sources`` records which source that was (a gauge like
  ``analysis.ig_nodes`` is a per-run probe; summing it would be
  meaningless).
* **histograms** — bucket-wise add on the shared log-decade bounds,
  with exact count/sum and min/max folding.  Bucket-wise addition is
  associative and commutative (asserted by property tests), so a
  merged histogram equals the histogram of the interleaved
  observation stream regardless of how requests were sharded.

All functions work on plain dicts, so worker snapshots can be merged
straight off the wire without reconstructing tracer objects.
"""

from __future__ import annotations

from repro.obs.tracer import Histogram

__all__ = [
    "fold_snapshot",
    "histogram_quantile",
    "merge_counters",
    "merge_gauges",
    "merge_histograms",
    "merge_snapshots",
]


def merge_counters(counter_maps: list[dict]) -> dict:
    """Sum counter maps key-wise."""
    merged: dict = {}
    for counters in counter_maps:
        for name, value in counters.items():
            merged[name] = merged.get(name, 0) + value
    return dict(sorted(merged.items()))


def merge_gauges(named_gauge_maps: list[tuple[str, dict]]) -> tuple[dict, dict]:
    """(merged, sources): last-listed source that set a gauge wins."""
    merged: dict = {}
    sources: dict = {}
    for source, gauges in named_gauge_maps:
        for name, value in gauges.items():
            merged[name] = value
            sources[name] = source
    return dict(sorted(merged.items())), dict(sorted(sources.items()))


def merge_histograms(histogram_dicts: list[dict]) -> dict:
    """Bucket-wise merge of serialized histograms (shared bounds)."""
    merged = Histogram()
    for entry in histogram_dicts:
        merged.merge_dict(entry)
    return merged.as_dict()


def merge_snapshots(named_snapshots: list[tuple[str, dict]]) -> dict:
    """One registry snapshot from many ``(source, snapshot)`` pairs.

    Missing sections (a :class:`~repro.obs.tracer.NullTracer` snapshot
    is ``{}``) merge as empty.  The result has the same shape as a
    single tracer's snapshot, plus ``gauge_sources``.
    """
    counters = merge_counters(
        [snap.get("counters", {}) for _, snap in named_snapshots]
    )
    gauges, gauge_sources = merge_gauges(
        [(source, snap.get("gauges", {})) for source, snap in named_snapshots]
    )
    histogram_names: set[str] = set()
    for _, snap in named_snapshots:
        histogram_names.update(snap.get("histograms", {}))
    histograms = {
        name: merge_histograms(
            [
                snap["histograms"][name]
                for _, snap in named_snapshots
                if name in snap.get("histograms", {})
            ]
        )
        for name in sorted(histogram_names)
    }
    return {
        "counters": counters,
        "gauges": gauges,
        "gauge_sources": gauge_sources,
        "histograms": histograms,
    }


def fold_snapshot(tracer, snapshot: dict) -> None:
    """Fold a snapshot dict into a live tracer.

    Used when a per-request full tracer finishes: its counters and
    histogram observations belong in the process-wide
    :class:`~repro.obs.tracer.MetricsTracer` too, or the request's
    work would vanish from the long-run metrics.
    """
    for name, value in snapshot.get("counters", {}).items():
        tracer.count(name, value)
    for name, value in snapshot.get("gauges", {}).items():
        tracer.gauge(name, value)
    for name, entry in snapshot.get("histograms", {}).items():
        histogram = tracer.histograms.get(name)
        if histogram is None:
            histogram = tracer.histograms[name] = Histogram()
        histogram.merge_dict(entry)


def histogram_quantile(histogram: dict, fraction: float) -> float | None:
    """Estimate a quantile (in seconds) from a serialized histogram.

    Walks the cumulative bucket counts to the target rank and returns
    the bucket's upper bound (the overflow bucket reports the observed
    max).  None when the histogram is empty.
    """
    count = histogram.get("count", 0)
    if not count:
        return None
    bounds = histogram.get("bucket_bounds_s", list(Histogram.BOUNDS))
    rank = fraction * count
    cumulative = 0
    for index, bucket in enumerate(histogram.get("buckets", ())):
        cumulative += bucket
        if cumulative >= rank and bucket:
            if index < len(bounds):
                return float(bounds[index])
            break
    maximum = histogram.get("max_s")
    return float(maximum) if maximum is not None else float(bounds[-1])
