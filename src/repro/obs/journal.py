"""A bounded, sequence-numbered ring buffer of structured events.

The journal records *lifecycle* events — request shed, coalesce join,
worker restart, incremental-update tier chosen, slow request, GC — at
request granularity (not per-statement), so it is always on and costs
one deque append per event.  Events are plain dicts::

    {"seq": 42, "ts": 1754650000.123, "kind": "shed",
     "reason": "queue_full", ...}

Sequence numbers are monotone per journal; the ring keeps the last
``capacity`` events, so a consumer polling ``since(last_seen)`` either
gets the contiguous tail or a structured *pruned* error telling it
where to re-sync (see :meth:`Journal.answer` — the shape the
``{"cmd": "events", "since": N}`` protocol verb returns).
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = ["Journal"]


class Journal:
    """Thread-safe bounded event ring with monotone sequence numbers."""

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("Journal capacity must be >= 1")
        self.capacity = capacity
        self._events: deque[dict] = deque(maxlen=capacity)
        self._next_seq = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._events)

    @property
    def next_seq(self) -> int:
        return self._next_seq

    def emit(self, kind: str, /, **fields) -> int:
        """Append one event; returns its sequence number."""
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            event = {"seq": seq, "ts": round(time.time(), 3), "kind": kind}
            event.update(fields)
            self._events.append(event)
            return seq

    def ingest(self, event: dict, source: str | None = None) -> int:
        """Re-stamp a foreign event (e.g. one a worker shipped up)
        with this journal's sequence, preserving its kind, fields, and
        original wall-clock timestamp, and recording the original
        sequence as ``origin_seq``."""
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            stored = {
                "seq": seq,
                "ts": event.get("ts", round(time.time(), 3)),
                "kind": event.get("kind", "event"),
            }
            for key, value in event.items():
                if key not in ("seq", "ts", "kind"):
                    stored[key] = value
            if "seq" in event:
                stored.setdefault("origin_seq", event["seq"])
            if source is not None:
                stored["source"] = source
            self._events.append(stored)
            return seq

    def oldest_seq(self) -> int | None:
        """Sequence of the oldest retained event (None when empty)."""
        with self._lock:
            return self._events[0]["seq"] if self._events else None

    def since(self, seq: int = 0) -> list[dict]:
        """Events with sequence >= ``seq`` (shallow copies)."""
        with self._lock:
            return [dict(event) for event in self._events if event["seq"] >= seq]

    def answer(self, since=None) -> dict:
        """The protocol response for ``{"cmd": "events", "since": N}``.

        An absent ``since`` tails from the oldest retained event.  An
        explicit ``since`` guarantees contiguity or refuses: asking
        for a range the ring has already pruned returns a structured
        error naming the oldest retained sequence, so pollers re-sync
        instead of silently missing events.
        """
        if since is not None and (
            not isinstance(since, int) or isinstance(since, bool) or since < 0
        ):
            return {
                "ok": False,
                "error": f"bad 'since': expected a non-negative integer, "
                f"got {since!r}",
                "hint": "poll with the next_seq of the previous response",
            }
        with self._lock:
            next_seq = self._next_seq
            oldest = self._events[0]["seq"] if self._events else next_seq
            if since is None:
                since = oldest
            if since > next_seq:
                return {
                    "ok": False,
                    "error": f"events: since={since} is in the future "
                    f"(next_seq is {next_seq})",
                    "next_seq": next_seq,
                    "oldest_seq": oldest,
                    "hint": "poll with a seq at most next_seq",
                }
            if since < oldest:
                return {
                    "ok": False,
                    "error": f"events: range since={since} pruned "
                    f"({oldest - since} events dropped from the ring; "
                    f"oldest retained seq is {oldest})",
                    "next_seq": next_seq,
                    "oldest_seq": oldest,
                    "hint": f"re-sync with since={oldest}",
                }
            events = [
                dict(event)
                for event in self._events
                if event["seq"] >= since
            ]
        return {
            "ok": True,
            "result": {
                "events": events,
                "next_seq": next_seq,
                "oldest_seq": oldest,
            },
        }
