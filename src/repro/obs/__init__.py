"""``repro.obs`` — pipeline-wide tracing and metrics.

One process-wide *current tracer* (a :class:`~repro.obs.tracer.Tracer`
or the shared :data:`~repro.obs.tracer.NULL_TRACER`) is consulted by
instrumentation hooks threaded through the whole pipeline: the C
frontend, the SIMPLE lowering, the interprocedural analysis core, and
the result-store service layer.  Tracing is **off by default** — the
hooks reduce to one attribute check — and is enabled for a dynamic
extent with :func:`tracing`::

    from repro import obs

    with obs.tracing() as tracer:
        analyze_source(source)
    print(tracer.render())          # span tree
    print(tracer.snapshot())        # counters / gauges / histograms

Hook call-sites use the module-level helpers below (:func:`span`,
:func:`count`, :func:`gauge`, :func:`observe`, :func:`timed`) so they
always see the currently-installed tracer.  :func:`timed` measures
wall time *unconditionally* (its ``elapsed`` attribute is the one
timing source for batch reports and benchmarks) and only additionally
records a span + histogram entry when tracing is on.

Consumers: ``repro-pta analyze --trace[=json]``, the JSON-lines serve
loop's ``{"cmd": "metrics"}`` request, and
``benchmarks/bench_perf.py``'s ``tracing`` section.  See
docs/OBSERVABILITY.md for the span taxonomy and schemas.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.obs.journal import Journal
from repro.obs.tracer import (
    NULL_TRACER,
    Histogram,
    MetricsTracer,
    NullTracer,
    Span,
    TraceImbalance,
    Tracer,
)
from repro.obs.traces import TraceBuffer, new_trace_id

__all__ = [
    "Histogram",
    "Journal",
    "MetricsTracer",
    "NullTracer",
    "Span",
    "TraceBuffer",
    "TraceImbalance",
    "Tracer",
    "NULL_TRACER",
    "active",
    "count",
    "event",
    "gauge",
    "get_tracer",
    "journal",
    "new_trace_id",
    "observe",
    "set_tracer",
    "span",
    "timed",
    "traces",
    "tracing",
]

_current = NULL_TRACER

#: Process-wide telemetry singletons.  The journal records lifecycle
#: events (always on — a few deque appends per *request*, never per
#: statement); the trace buffer retains finished per-request trace
#: documents for the ``{"cmd": "trace"}`` verb.
_journal = Journal()
_traces = TraceBuffer()


def journal() -> Journal:
    """The process-wide event journal."""
    return _journal


def traces() -> TraceBuffer:
    """The process-wide buffer of finished request traces."""
    return _traces


def event(kind: str, /, **fields) -> int:
    """Emit one structured event into the process journal."""
    return _journal.emit(kind, **fields)


def get_tracer():
    """The currently-installed tracer (never None)."""
    return _current


def set_tracer(tracer) -> None:
    """Install ``tracer`` process-wide; None restores the null tracer."""
    global _current
    _current = tracer if tracer is not None else NULL_TRACER


def active() -> bool:
    """True when a real (enabled) tracer is installed."""
    return _current.enabled


@contextmanager
def tracing(tracer: Tracer | None = None):
    """Install ``tracer`` (a fresh :class:`Tracer` by default) for the
    dynamic extent of the ``with`` block; restores the previous tracer
    on exit."""
    global _current
    previous = _current
    _current = tracer if tracer is not None else Tracer()
    try:
        yield _current
    finally:
        _current = previous


# -- hook helpers (consult the current tracer at call time) ----------------


def span(name: str, /, **attrs):
    """A span context manager on the current tracer (no-op when off)."""
    return _current.span(name, **attrs)


def count(name: str, n: int | float = 1) -> None:
    tracer = _current
    if tracer.enabled:
        tracer.count(name, n)


def gauge(name: str, value: int | float) -> None:
    tracer = _current
    if tracer.enabled:
        tracer.gauge(name, value)


def observe(name: str, seconds: float) -> None:
    tracer = _current
    if tracer.enabled:
        tracer.observe(name, seconds)


class timed:
    """Context manager that always measures wall time.

    ``elapsed`` (seconds) is set on exit regardless of tracing, which
    makes it the single timing source for reports that must work
    untraced (batch rows, benchmarks).  When tracing is on it *also*
    opens a span named ``name`` and feeds the duration into the
    histogram of the same name.
    """

    __slots__ = ("name", "attrs", "elapsed", "_start", "_context")

    def __init__(self, name: str, /, **attrs):
        self.name = name
        self.attrs = attrs
        self.elapsed = 0.0
        self._start = 0.0
        self._context = None

    def __enter__(self) -> "timed":
        tracer = _current
        if tracer.enabled:
            self._context = tracer.span(self.name, **self.attrs)
            self._context.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed = time.perf_counter() - self._start
        context = self._context
        if context is not None:
            observe(self.name, self.elapsed)
            self._context = None
            return context.__exit__(exc_type, exc, tb)
        return False
