"""Node definitions for the SIMPLE intermediate representation.

The grammar of SIMPLE *references* mirrors Table 1 of the paper: a
reference names a base variable, optionally dereferenced once, followed
by a selector path of field accesses and array subscripts:

    a,  a.f,  a[i],  *a,  (*a).f,  (*a)[i],  a.f[i], ...

Every basic statement contains at most one level of pointer
indirection per reference; the simplifier introduces temporaries to
enforce this.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.frontend.ctypes import CType
from repro.frontend.errors import NO_LOC, SourceLoc


class IndexClass(enum.Enum):
    """Classification of an array subscript (Table 1 row selection)."""

    ZERO = "0"  # provably index 0            -> a_head
    POSITIVE = "+"  # provably index > 0        -> a_tail
    UNKNOWN = "?"  # anything else              -> {a_head, a_tail}

    def __str__(self) -> str:
        return self.value


class Selector:
    """Base class for reference selectors."""


@dataclass(frozen=True)
class FieldSel(Selector):
    """A structure field access ``.name``."""

    name: str

    def __str__(self) -> str:
        return f".{self.name}"


@dataclass(frozen=True)
class IndexSel(Selector):
    """An array subscript, abstracted to its :class:`IndexClass`.

    ``expr`` optionally carries the concrete index operand (a Const or
    a plain variable Ref).  The analysis never reads it — abstraction
    happens through ``index`` — but the concrete interpreter
    (:mod:`repro.interp`) needs the value.  It is excluded from
    equality so references compare structurally.
    """

    index: IndexClass
    expr: object | None = field(default=None, compare=False, hash=False)

    def __str__(self) -> str:
        return f"[{self.index}]"


@dataclass(frozen=True)
class Ref:
    """A SIMPLE variable reference.

    ``deref`` applies to the base variable (at most one level, as in the
    paper); ``path`` is the selector chain applied afterwards.
    """

    base: str
    deref: bool = False
    path: tuple[Selector, ...] = ()

    def __str__(self) -> str:
        text = f"(*{self.base})" if self.deref else self.base
        return text + "".join(str(s) for s in self.path)

    def with_field(self, name: str) -> "Ref":
        return Ref(self.base, self.deref, self.path + (FieldSel(name),))

    def with_index(self, index: IndexClass, expr: object | None = None) -> "Ref":
        return Ref(self.base, self.deref, self.path + (IndexSel(index, expr),))

    @property
    def is_plain_var(self) -> bool:
        return not self.deref and not self.path


@dataclass(frozen=True)
class Const:
    """A constant operand.  ``value`` may be int/float/str; a pointer
    context with value 0 means NULL."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)

    @property
    def is_null(self) -> bool:
        return self.value == 0


@dataclass(frozen=True)
class AddrOf:
    """``&ref`` — only legal as the rhs of an address assignment."""

    ref: Ref

    def __str__(self) -> str:
        return f"&{self.ref}"


#: An operand of a basic statement.
Operand = Ref | Const | AddrOf


class Stmt:
    """Base class of all SIMPLE statements."""

    stmt_id: int
    loc: SourceLoc
    labels: tuple[str, ...]


_STMT_IDS = itertools.count(1)


def _fresh_id() -> int:
    return next(_STMT_IDS)


def _init_stmt(stmt: "Stmt", loc: SourceLoc) -> None:
    stmt.stmt_id = _fresh_id()
    stmt.loc = loc
    stmt.labels = ()


class BasicKind(enum.Enum):
    """The basic (non-compositional) statement forms."""

    COPY = "copy"  # lhs = ref
    ADDR = "addr"  # lhs = &ref
    CONST = "const"  # lhs = const
    BINOP = "binop"  # lhs = a op b
    UNOP = "unop"  # lhs = op a
    CALL = "call"  # [lhs =] f(args) / [lhs =] (*fp)(args)
    ALLOC = "alloc"  # lhs = malloc(...)
    NOP = "nop"


@dataclass
class BasicStmt(Stmt):
    """A basic statement.

    The shape depends on ``kind``:

    * ``COPY``: ``lhs = rvalue`` with ``rvalue`` a :class:`Ref`;
    * ``ADDR``: ``rvalue`` an :class:`AddrOf`;
    * ``CONST``: ``rvalue`` a :class:`Const`;
    * ``BINOP``/``UNOP``: ``operands`` holds the simplified operands and
      ``op`` the operator; pointer arithmetic is detected from types;
    * ``CALL``: ``callee`` is the function name for direct calls, or
      None with ``callee_ptr`` naming the function-pointer variable for
      indirect calls; ``args`` are constants or plain variable refs;
    * ``ALLOC``: a heap allocation (``malloc``/``calloc``/...).
    """

    kind: BasicKind
    lhs: Ref | None = None
    rvalue: Operand | None = None
    op: str | None = None
    operands: tuple[Operand, ...] = ()
    callee: str | None = None
    callee_ptr: str | None = None
    args: tuple[Operand, ...] = ()
    #: Static type of the lhs reference (None when no lhs).
    lhs_type: CType | None = None
    #: Call-site identifier, unique per syntactic call (CALL/ALLOC only).
    call_site: int | None = None

    def __post_init__(self) -> None:
        _init_stmt(self, NO_LOC)

    def __str__(self) -> str:
        if self.kind is BasicKind.NOP:
            return "nop"
        if self.kind is BasicKind.CALL or self.kind is BasicKind.ALLOC:
            target = self.callee if self.callee else f"(*{self.callee_ptr})"
            call = f"{target}({', '.join(str(a) for a in self.args)})"
            return f"{self.lhs} = {call}" if self.lhs else call
        if self.kind in (BasicKind.COPY, BasicKind.ADDR, BasicKind.CONST):
            return f"{self.lhs} = {self.rvalue}"
        if self.kind is BasicKind.UNOP:
            return f"{self.lhs} = {self.op}{self.operands[0]}"
        return f"{self.lhs} = {self.operands[0]} {self.op} {self.operands[1]}"


@dataclass
class SBlock(Stmt):
    """A statement sequence."""

    stmts: list[Stmt] = field(default_factory=list)

    def __post_init__(self) -> None:
        _init_stmt(self, NO_LOC)


@dataclass
class SIf(Stmt):
    cond: Operand | None
    then_block: SBlock
    else_block: SBlock | None = None

    def __post_init__(self) -> None:
        _init_stmt(self, NO_LOC)


@dataclass
class SWhile(Stmt):
    """``while``: each iteration runs ``cond_eval`` (side effects hoisted
    out of the source condition; usually empty), tests ``cond``, then the
    body.  ``continue`` transfers to ``cond_eval``."""

    cond: Operand | None
    body: SBlock
    cond_eval: SBlock = field(default_factory=lambda: SBlock([]))

    def __post_init__(self) -> None:
        _init_stmt(self, NO_LOC)


@dataclass
class SDoWhile(Stmt):
    """``do``: body, then ``cond_eval``, then the test.  ``continue``
    transfers to ``cond_eval``."""

    body: SBlock
    cond: Operand | None
    cond_eval: SBlock = field(default_factory=lambda: SBlock([]))

    def __post_init__(self) -> None:
        _init_stmt(self, NO_LOC)


@dataclass
class SFor(Stmt):
    """``for``: init once; each iteration runs ``cond_eval``, tests
    ``cond``, runs the body, then ``step``.  ``continue`` transfers to
    ``step``."""

    init: SBlock
    cond: Operand | None
    step: SBlock
    body: SBlock
    cond_eval: SBlock = field(default_factory=lambda: SBlock([]))

    def __post_init__(self) -> None:
        _init_stmt(self, NO_LOC)


@dataclass
class SSwitchCase:
    """One arm of a switch; ``values`` empty means ``default``."""

    values: tuple[int, ...]
    body: SBlock
    falls_through: bool = False


@dataclass
class SSwitch(Stmt):
    cond: Operand | None
    cases: list[SSwitchCase] = field(default_factory=list)
    has_default: bool = False

    def __post_init__(self) -> None:
        _init_stmt(self, NO_LOC)


@dataclass
class SBreak(Stmt):
    def __post_init__(self) -> None:
        _init_stmt(self, NO_LOC)


@dataclass
class SContinue(Stmt):
    def __post_init__(self) -> None:
        _init_stmt(self, NO_LOC)


@dataclass
class SReturn(Stmt):
    value: Operand | None = None

    def __post_init__(self) -> None:
        _init_stmt(self, NO_LOC)


# ---------------------------------------------------------------------------
# Functions and programs
# ---------------------------------------------------------------------------


@dataclass
class SimpleFunction:
    """A function lowered to SIMPLE."""

    name: str
    return_type: CType
    params: list[tuple[str, CType]]
    local_types: dict[str, CType]
    body: SBlock
    variadic: bool = False
    source_lines: int = 0

    @property
    def param_names(self) -> list[str]:
        return [name for name, _ in self.params]

    def var_type(self, name: str) -> CType | None:
        for pname, ptype in self.params:
            if pname == name:
                return ptype
        return self.local_types.get(name)

    def iter_stmts(self):
        """Yield every statement in the body, depth first."""
        yield from iter_stmts(self.body)

    def count_basic_stmts(self) -> int:
        return sum(1 for s in self.iter_stmts() if isinstance(s, BasicStmt))


def iter_stmts(stmt: Stmt):
    """Depth-first traversal over a SIMPLE statement tree."""
    yield stmt
    if isinstance(stmt, SBlock):
        for child in stmt.stmts:
            yield from iter_stmts(child)
    elif isinstance(stmt, SIf):
        yield from iter_stmts(stmt.then_block)
        if stmt.else_block is not None:
            yield from iter_stmts(stmt.else_block)
    elif isinstance(stmt, SWhile):
        yield from iter_stmts(stmt.cond_eval)
        yield from iter_stmts(stmt.body)
    elif isinstance(stmt, SDoWhile):
        yield from iter_stmts(stmt.body)
        yield from iter_stmts(stmt.cond_eval)
    elif isinstance(stmt, SFor):
        yield from iter_stmts(stmt.init)
        yield from iter_stmts(stmt.cond_eval)
        yield from iter_stmts(stmt.step)
        yield from iter_stmts(stmt.body)
    elif isinstance(stmt, SSwitch):
        for case in stmt.cases:
            yield from iter_stmts(case.body)


@dataclass
class SimpleProgram:
    """A whole program in SIMPLE form."""

    functions: dict[str, SimpleFunction]
    global_types: dict[str, CType]
    #: Prototypes of declared-but-undefined (external) functions.
    externals: dict[str, CType]
    #: Label name -> (function name, stmt_id) for program-point queries.
    labels: dict[str, tuple[str, int]]
    #: Global-variable initializers, run once before ``main``.
    global_init: SBlock = field(default_factory=lambda: SBlock([]))
    #: Total source lines (for Table 2).
    source_lines: int = 0

    def function(self, name: str) -> SimpleFunction:
        return self.functions[name]

    def count_basic_stmts(self) -> int:
        return sum(f.count_basic_stmts() for f in self.functions.values())

    def var_type(self, func: str | None, name: str) -> CType | None:
        """Resolve a variable's type: function locals first, then globals."""
        if func is not None and func in self.functions:
            local = self.functions[func].var_type(name)
            if local is not None:
                return local
        return self.global_types.get(name)
