"""Function-granularity re-parsing for incremental updates.

``split_chunks`` cuts C source text into *top-level chunks* — function
definitions and everything else (globals, structs, prototypes) — with
a brace/paren/comment/string-aware scanner.  ``incremental_simplify``
then re-lowers only the functions whose chunk text changed: it builds
a *subset source* where every unchanged function definition is
replaced by a prototype generated from its own header text, parses
that, and splices the freshly lowered functions into the old program's
IR, reusing every unchanged :class:`~repro.simple.ir.SimpleFunction`
object verbatim.

Call-site renumbering: ``call_site`` ids are assigned by a per-parse
counter in textual lowering order, and they are encoded raw into the
artifact's invocation-graph section, so a spliced program must carry
exactly the ids a cold parse of the new source would assign.  The
splice renumbers every call statement program-wide — functions in
source order, each function's sites in its own (monotone) lowering
order — which reproduces the cold numbering without re-lowering
anything.  **This mutates the shared statement objects**: the caller
(``repro.core.incremental``) takes ownership of the old program, which
is only sound because an update always replaces the old analysis.

Everything here is conservative: any structural condition the splice
cannot prove (chunking failure, function added/removed/renamed,
signature change, non-function chunks differing, global/extern tables
that might have been extended by an unchanged body's lowering) returns
``None`` and the caller falls back to a full parse.  Falling back is
always correct — the fast path is an optimization, never a semantics
change.
"""

from __future__ import annotations

import functools
import re
from dataclasses import dataclass, field

from repro.frontend.errors import SourceLoc
from repro.simple.ir import BasicKind, BasicStmt, SimpleProgram
from repro.simple.simplify import CFrontendError, simplify_source


class ChunkError(ValueError):
    """Source text the top-level chunker cannot split safely."""


@dataclass
class Chunk:
    """One top-level region of the source text."""

    text: str
    kind: str  # "function" | "other"
    name: str | None = None  # function name, for kind == "function"
    header: str | None = None  # text through the parameter list's ")"
    start: int = 0  # [start, end) span in the source text
    end: int = 0


_NAME_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\s*$")

#: Keywords that can directly precede a parenthesis without naming a
#: function (``if (...)`` can't appear at the top level, but guard the
#: name extraction anyway).
_NON_NAMES = {
    "if", "while", "for", "switch", "return", "sizeof", "struct",
    "union", "enum", "typedef",
}


def split_chunks(source: str) -> list[Chunk]:
    """Split C source into top-level chunks (see module docstring).

    Raises :class:`ChunkError` on text the scanner cannot split with
    confidence (unbalanced braces, a brace group that is neither a
    function body nor terminated by ``;``, a function definition whose
    name cannot be extracted).

    Memoized on the source text: one differential check chunks the
    same text several times (planning, replay state, suppression
    attribution), and nothing mutates the returned ``Chunk`` objects —
    callers get a fresh list over the shared chunks.
    """
    return list(_split_chunks_cached(source))


@functools.lru_cache(maxsize=32)
def _split_chunks_cached(source: str) -> tuple[Chunk, ...]:
    chunks: list[Chunk] = []
    n = len(source)
    i = 0
    start = 0  # current chunk start
    brace = paren = 0
    #: Offset of the first top-level "(" of the current chunk, and of
    #: the ")" closing that group — the span that makes it a function.
    first_paren = None
    header_end = None

    def flush(end: int, kind: str) -> None:
        nonlocal start, first_paren, header_end
        text = source[start:end]
        if text.strip():
            if kind == "function":
                header = source[start:header_end]
                match = _NAME_RE.search(source[start:first_paren])
                if match is None or match.group(1) in _NON_NAMES:
                    raise ChunkError(
                        f"cannot extract function name from chunk "
                        f"{text[:60]!r}"
                    )
                chunks.append(
                    Chunk(text, "function", match.group(1), header,
                          start, end)
                )
            else:
                chunks.append(Chunk(text, "other", start=start, end=end))
        start = end
        first_paren = None
        header_end = None

    while i < n:
        ch = source[i]
        nxt = source[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            i = source.find("\n", i)
            i = n if i < 0 else i + 1
            continue
        if ch == "/" and nxt == "*":
            end = source.find("*/", i + 2)
            if end < 0:
                raise ChunkError("unterminated block comment")
            i = end + 2
            continue
        if ch in "\"'":
            quote = ch
            i += 1
            while i < n:
                if source[i] == "\\":
                    i += 2
                    continue
                if source[i] == quote:
                    break
                i += 1
            if i >= n:
                raise ChunkError("unterminated string/char literal")
            i += 1
            continue
        if ch == "#" and brace == 0 and paren == 0:
            # A preprocessor-looking line is its own opaque chunk.
            end = source.find("\n", i)
            end = n if end < 0 else end + 1
            flush(i, "other")
            i = end
            flush(i, "other")
            continue
        if ch == "(":
            if brace == 0 and paren == 0 and first_paren is None:
                first_paren = i
            paren += 1
        elif ch == ")":
            paren -= 1
            if paren < 0:
                raise ChunkError("unbalanced parentheses")
            if paren == 0 and brace == 0 and header_end is None:
                header_end = i + 1
        elif ch == "{":
            brace += 1
        elif ch == "}":
            brace -= 1
            if brace < 0:
                raise ChunkError("unbalanced braces")
            if brace == 0:
                # Function body, or a braced initializer / struct body
                # that must still be followed by ";".
                tail = _next_code_char(source, i + 1)
                if first_paren is not None and (
                    tail is None or source[tail] != ";"
                ):
                    i += 1
                    flush(i, "function")
                    continue
                if tail is None or source[tail] != ";":
                    raise ChunkError(
                        "top-level brace group not a function and not "
                        "';'-terminated"
                    )
        elif ch == ";" and brace == 0 and paren == 0:
            i += 1
            flush(i, "other")
            continue
        i += 1

    if brace != 0 or paren != 0:
        raise ChunkError("unbalanced braces or parentheses at EOF")
    if source[start:].strip():
        raise ChunkError("trailing top-level text without terminator")
    return tuple(chunks)


def _next_code_char(source: str, i: int) -> int | None:
    """Index of the next non-whitespace, non-comment character."""
    n = len(source)
    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            i = source.find("\n", i)
            if i < 0:
                return None
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "*":
            end = source.find("*/", i + 2)
            if end < 0:
                return None
            i = end + 2
            continue
        return i
    return None


def _normalize(text: str) -> str:
    return " ".join(text.split())


@dataclass
class IncrementalParse:
    """A spliced program plus what the splice learned about the edit."""

    program: SimpleProgram
    #: Names of the functions whose chunk text changed (re-lowered).
    changed: list[str]
    #: Old call-site id -> new call-site id for every call statement of
    #: every *unchanged* function (identity unless site counts shifted).
    site_map: dict[int, int] = field(default_factory=dict)


def _call_stmts(fn) -> list[BasicStmt]:
    # ALLOC statements draw from the same per-parse site counter as
    # CALL statements, so both participate in the renumbering.
    calls = [
        stmt
        for stmt in fn.iter_stmts()
        if isinstance(stmt, BasicStmt)
        and stmt.kind in (BasicKind.CALL, BasicKind.ALLOC)
    ]
    calls.sort(key=lambda stmt: stmt.call_site)
    return calls


def incremental_simplify(
    old_source: str,
    old_program: SimpleProgram,
    new_source: str,
    filename: str = "<update>",
) -> IncrementalParse | None:
    """Re-lower only the changed functions; splice the rest.

    Returns ``None`` whenever the edit is not a pure function-body
    edit the splice can prove safe (see module docstring); the caller
    then falls back to ``simplify_source(new_source)``.
    """
    try:
        old_chunks = split_chunks(old_source)
        new_chunks = split_chunks(new_source)
    except ChunkError:
        return None
    if len(old_chunks) != len(new_chunks):
        return None

    changed: list[str] = []
    for old_chunk, new_chunk in zip(old_chunks, new_chunks):
        if old_chunk.kind != new_chunk.kind:
            return None
        if old_chunk.kind == "function":
            if old_chunk.name != new_chunk.name:
                return None
            if old_chunk.text != new_chunk.text:
                if _normalize(old_chunk.header) != _normalize(
                    new_chunk.header
                ):
                    return None  # signature change: callers re-lower
                changed.append(new_chunk.name)
        elif old_chunk.text != new_chunk.text:
            return None  # global / struct / prototype edit

    names = [c.name for c in new_chunks if c.kind == "function"]
    if len(set(names)) != len(names):
        return None
    if set(names) != set(old_program.functions):
        return None  # a chunk the old parse didn't turn into a function
    if not changed:
        changed = []

    # Subset source: unchanged definitions shrink to prototypes
    # generated from their own header text, preserving declaration
    # order so the changed bodies lower in an identical environment.
    changed_set = set(changed)
    parts: list[str] = []
    pos = 0
    for chunk in new_chunks:
        parts.append(new_source[pos:chunk.start])
        pos = chunk.end
        if chunk.kind == "function" and chunk.name not in changed_set:
            # Pad the prototype to the chunk's exact line count so the
            # changed bodies lower with their cold-parse line numbers
            # (statement locations are encoded into artifacts).
            stub = chunk.header + ";"
            pad = chunk.text.count("\n") - stub.count("\n")
            if pad < 0:
                return None
            parts.append(stub + "\n" * pad)
        else:
            parts.append(chunk.text)
    parts.append(new_source[pos:])
    try:
        sub = simplify_source("".join(parts), filename)
    except CFrontendError:
        return None
    if set(sub.functions) != changed_set:
        return None

    # Lowering of the *unchanged* bodies can extend the global /
    # external tables (string-literal pools, implicitly declared
    # externals); the subset parse cannot see those, so any mismatch
    # means the splice cannot reproduce the cold tables faithfully.
    if list(sub.global_types.items()) != list(
        old_program.global_types.items()
    ):
        return None
    # The prototypes injected for unchanged functions register as
    # externals in the subset parse; ignore exactly those.
    sub_externals = {
        name: ctype
        for name, ctype in sub.externals.items()
        if name not in set(names) - changed_set
    }
    if list(sub_externals.items()) != list(old_program.externals.items()):
        return None

    functions = {}
    for name in names:
        if name in changed_set:
            functions[name] = sub.functions[name]
        else:
            functions[name] = old_program.functions[name]

    # Statement locations are encoded into artifacts, so reused
    # statements must carry the lines a cold parse of the new source
    # would assign.  Unchanged functions below an edit that grew or
    # shrank shift by their chunk's line delta; a shifted non-function
    # chunk would leave stale lines on global-initializer statements
    # we cannot attribute, so bail out instead.
    for old_chunk, new_chunk in zip(old_chunks, new_chunks):
        delta = new_source.count("\n", 0, new_chunk.start) - old_source.count(
            "\n", 0, old_chunk.start
        )
        if delta == 0:
            continue
        if new_chunk.kind != "function":
            return None
        if new_chunk.name in changed_set:
            continue  # re-lowered at its new position already
        for stmt in functions[new_chunk.name].iter_stmts():
            if stmt.loc.line:
                stmt.loc = SourceLoc(
                    stmt.loc.line + delta, stmt.loc.column, stmt.loc.filename
                )

    labels: dict[str, tuple[str, int]] = {}
    for name in names:
        source_labels = (
            sub.labels if name in changed_set else old_program.labels
        )
        for label, (func, stmt_id) in source_labels.items():
            if func == name:
                labels[label] = (func, stmt_id)
    if len(labels) != len(old_program.labels):
        return None  # a label moved across functions or was dropped

    program = SimpleProgram(
        functions=functions,
        global_types=dict(old_program.global_types),
        externals=dict(old_program.externals),
        labels=labels,
        global_init=old_program.global_init,
        source_lines=sub.source_lines,
    )

    # Program-wide call-site renumbering in cold-parse order: functions
    # in source order, each function's calls in its own monotone
    # lowering order.  Mutates the (shared) statement objects — the
    # caller owns the old program from here on.
    site_map: dict[int, int] = {}
    counter = 0
    for name in names:
        for stmt in _call_stmts(functions[name]):
            counter += 1
            if name not in changed_set:
                site_map[stmt.call_site] = counter
            stmt.call_site = counter
    return IncrementalParse(program, changed, site_map)
