"""Lowering from the C AST to the SIMPLE intermediate representation.

The pass enforces the SIMPLE invariants the paper's analysis rules rely
on (Section 2):

* every variable reference in a basic statement has at most one level
  of pointer indirection (temporaries are introduced otherwise);
* conditions of ``if``/``while``/... are side-effect free (side effects
  are hoisted into the loop's ``cond_eval`` block);
* procedure arguments are constants or plain variable names;
* variable initializations are moved from declarations into the body;
* local names are made unique per function (block scoping/shadowing is
  resolved by renaming), since abstract stack locations are named by
  variables.
"""

from __future__ import annotations

from repro.frontend import cast
from repro.frontend.cast import TranslationUnit
from repro.frontend.ctypes import (
    CHAR,
    DOUBLE,
    INT,
    ArrayType,
    CType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    VOID,
    VoidType,
    decay,
)
from repro.frontend.errors import CFrontendError, SourceLoc
from repro.frontend.parser import parse
from repro.simple.ir import (
    AddrOf,
    BasicKind,
    BasicStmt,
    Const,
    IndexClass,
    Operand,
    Ref,
    SBlock,
    SBreak,
    SContinue,
    SDoWhile,
    SFor,
    SIf,
    SReturn,
    SSwitch,
    SSwitchCase,
    SWhile,
    SimpleFunction,
    SimpleProgram,
    Stmt,
)

#: Functions treated as heap allocators (R-locations ``{(heap, P)}``).
HEAP_ALLOCATORS = frozenset(
    {"malloc", "calloc", "realloc", "valloc", "memalign", "strdup", "alloca"}
)

#: Name of the abstract location shared by all string literals.
STRING_LIT_VAR = "__strlit"

#: Known pointer-returning library functions: used when a benchmark
#: calls them without a prototype (C89 implicit declaration would
#: otherwise type the result ``int`` and lose the pointer value).
_POINTER_RETURNING_EXTERNALS = frozenset(
    {
        "getenv", "strerror", "ctime", "asctime", "getcwd", "gets",
        "fgets", "strcpy", "strncpy", "strcat", "strncat", "memcpy",
        "memmove", "memset", "fopen", "tmpfile", "strchr", "strrchr",
        "strstr", "strtok",
    }
)


class SimplifyError(CFrontendError):
    """Raised when a construct cannot be lowered to SIMPLE."""


def _is_pointerish(ctype: CType) -> bool:
    return isinstance(decay(ctype), PointerType)


class _FunctionSimplifier:
    """Lowers one function body; owns renaming, temps, and emission."""

    def __init__(self, program: "_ProgramSimplifier", fn: cast.FunctionDef):
        self.program = program
        self.fn = fn
        self.scopes: list[dict[str, str]] = [
            {p.name: p.name for p in fn.params}
        ]
        self.param_types = {p.name: p.type for p in fn.params}
        self.local_types: dict[str, CType] = {}
        self.used_names: set[str] = set(self.param_types)
        self.temp_counter = 0
        self.blocks: list[list[Stmt]] = []

    # -- emission ------------------------------------------------------

    def emit(self, stmt: Stmt, loc: SourceLoc | None = None) -> Stmt:
        if loc is not None:
            stmt.loc = loc
        self.blocks[-1].append(stmt)
        return stmt

    def collect(self, fn) -> SBlock:
        """Run ``fn`` with a fresh emission buffer; return it as a block."""
        self.blocks.append([])
        try:
            fn()
        finally:
            stmts = self.blocks.pop()
        return SBlock(stmts)

    # -- names and types -------------------------------------------------

    def fresh_temp(self, ctype: CType) -> str:
        self.temp_counter += 1
        name = f"__t{self.temp_counter}"
        self.local_types[name] = ctype
        self.used_names.add(name)
        return name

    def declare_local(self, name: str, ctype: CType) -> str:
        unique = name
        suffix = 1
        while unique in self.used_names or unique in self.program.global_types:
            suffix += 1
            unique = f"{name}__{suffix}"
        self.used_names.add(unique)
        self.scopes[-1][name] = unique
        self.local_types[unique] = ctype
        return unique

    def resolve(self, name: str) -> str | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def var_type(self, unique: str) -> CType | None:
        if unique in self.param_types:
            return self.param_types[unique]
        if unique in self.local_types:
            return self.local_types[unique]
        return self.program.global_types.get(unique)

    # -- expression typing ------------------------------------------------

    def stype(self, expr: cast.Expr) -> CType:
        """Static type of an AST expression in the current scope."""
        if isinstance(expr, cast.IntLit):
            return INT
        if isinstance(expr, cast.FloatLit):
            return DOUBLE
        if isinstance(expr, cast.StringLit):
            return PointerType(CHAR)
        if isinstance(expr, cast.Ident):
            unique = self.resolve(expr.name)
            if unique is not None:
                ctype = self.var_type(unique)
                if ctype is not None:
                    return ctype
            if expr.name in self.program.global_types:
                return self.program.global_types[expr.name]
            fn_type = self.program.function_type(expr.name)
            if fn_type is not None:
                return fn_type
            return self.program.implicit_function(expr.name, expr.loc)
        if isinstance(expr, cast.Unary):
            if expr.op == "*":
                inner = decay(self.stype(expr.operand))
                if isinstance(inner, PointerType):
                    return inner.pointee
                raise SimplifyError(
                    f"cannot dereference non-pointer type {inner}", expr.loc
                )
            if expr.op == "&":
                return PointerType(self.stype(expr.operand))
            if expr.op == "!":
                return INT
            return self.stype(expr.operand)
        if isinstance(expr, cast.Binary):
            if expr.op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
                return INT
            left = decay(self.stype(expr.left))
            right = decay(self.stype(expr.right))
            if isinstance(left, PointerType) and isinstance(right, PointerType):
                return INT  # pointer difference
            if isinstance(left, PointerType):
                return left
            if isinstance(right, PointerType):
                return right
            if isinstance(left, IntType) and not isinstance(right, IntType):
                return right
            return left
        if isinstance(expr, cast.Assign):
            return self.stype(expr.target)
        if isinstance(expr, cast.Conditional):
            then_t = decay(self.stype(expr.then_expr))
            if isinstance(then_t, VoidType):
                return decay(self.stype(expr.else_expr))
            return then_t
        if isinstance(expr, cast.Call):
            callee_t = decay(self.stype(expr.func))
            if isinstance(callee_t, PointerType):
                callee_t = callee_t.pointee
            if isinstance(callee_t, FunctionType):
                return callee_t.return_type
            raise SimplifyError(f"call of non-function type {callee_t}", expr.loc)
        if isinstance(expr, cast.Subscript):
            base_t = decay(self.stype(expr.base))
            if isinstance(base_t, PointerType):
                return base_t.pointee
            raise SimplifyError(f"cannot index type {base_t}", expr.loc)
        if isinstance(expr, cast.Member):
            base_t = self.stype(expr.base)
            if expr.arrow:
                base_t = decay(base_t)
                if not isinstance(base_t, PointerType):
                    raise SimplifyError(
                        f"'->' on non-pointer type {base_t}", expr.loc
                    )
                base_t = base_t.pointee
            if not isinstance(base_t, StructType):
                raise SimplifyError(
                    f"member access on non-struct type {base_t}", expr.loc
                )
            field_t = base_t.field_type(expr.field)
            if field_t is None:
                raise SimplifyError(
                    f"no field '{expr.field}' in {base_t}", expr.loc
                )
            return field_t
        if isinstance(expr, cast.Cast):
            return expr.to_type
        if isinstance(expr, (cast.SizeofType, cast.SizeofExpr)):
            return INT
        if isinstance(expr, cast.Comma):
            return self.stype(expr.exprs[-1])
        raise SimplifyError(f"cannot type expression {type(expr).__name__}")

    # -- lvalue lowering ---------------------------------------------------

    def lvalue(self, expr: cast.Expr) -> tuple[Ref, CType]:
        """Lower an lvalue expression to a SIMPLE reference."""
        if isinstance(expr, cast.Ident):
            unique = self.resolve(expr.name)
            if unique is None:
                if expr.name in self.program.global_types:
                    unique = expr.name
                else:
                    raise SimplifyError(
                        f"'{expr.name}' is not an assignable variable", expr.loc
                    )
            ctype = self.var_type(unique)
            assert ctype is not None
            return Ref(unique), ctype

        if isinstance(expr, cast.Unary) and expr.op == "*":
            pointee = self.stype(expr)
            var = self.plain_var_value(expr.operand)
            return Ref(var, deref=True), pointee

        if isinstance(expr, cast.Member):
            field_t = self.stype(expr)
            if expr.arrow:
                var = self.plain_var_value(expr.base)
                return Ref(var, deref=True).with_field(expr.field), field_t
            base_ref, _ = self.lvalue(expr.base)
            return base_ref.with_field(expr.field), field_t

        if isinstance(expr, cast.Subscript):
            elem_t = self.stype(expr)
            base_t = self.stype(expr.base)
            index_class = self.classify_index(expr.index)
            # The concrete index operand rides along for the
            # interpreter (side effects in the index are emitted here).
            index_op = self.operand(expr.index)
            if isinstance(base_t, ArrayType):
                base_ref, _ = self.lvalue(expr.base)
                return base_ref.with_index(index_class, index_op), elem_t
            # Pointer indexing: *(p + i), staying within the target.
            var = self.plain_var_value(expr.base)
            return Ref(var, deref=True).with_index(index_class, index_op), elem_t

        if isinstance(expr, cast.Cast):
            ref, _ = self.lvalue(expr.operand)
            return ref, expr.to_type

        # Fall back: materialize the value in a temporary (e.g. the
        # struct result of a call used as `f().x`).
        op = self.operand(expr)
        ctype = self.stype(expr)
        if isinstance(op, Ref):
            return op, ctype
        temp = self.fresh_temp(ctype)
        self._emit_assign(Ref(temp), ctype, op)
        return Ref(temp), ctype

    def plain_var_value(self, expr: cast.Expr) -> str:
        """Get the value of a pointer expression into a *plain* variable."""
        if isinstance(expr, cast.Ident):
            unique = self.resolve(expr.name)
            if unique is None and expr.name in self.program.global_types:
                unique = expr.name
            if unique is not None:
                ctype = self.var_type(unique)
                if ctype is not None and not isinstance(ctype, ArrayType):
                    return unique
        op = self.operand(expr)
        if isinstance(op, Ref) and op.is_plain_var:
            return op.base
        ctype = decay(self.stype(expr))
        temp = self.fresh_temp(ctype)
        self._emit_assign(Ref(temp), ctype, op)
        return temp

    def classify_index(self, expr: cast.Expr) -> IndexClass:
        if isinstance(expr, cast.IntLit):
            if expr.value == 0:
                return IndexClass.ZERO
            if expr.value > 0:
                return IndexClass.POSITIVE
        return IndexClass.UNKNOWN

    def _evaluate_for_effects(self, expr: cast.Expr) -> None:
        """Evaluate an expression only if it has side effects."""
        if self._has_side_effects(expr):
            self.operand(expr)

    def _has_side_effects(self, expr: cast.Expr) -> bool:
        if isinstance(expr, (cast.Assign, cast.Call)):
            return True
        if isinstance(expr, cast.Unary):
            if expr.op in ("++pre", "--pre", "++post", "--post"):
                return True
            return self._has_side_effects(expr.operand)
        if isinstance(expr, cast.Binary):
            return self._has_side_effects(expr.left) or self._has_side_effects(
                expr.right
            )
        if isinstance(expr, cast.Conditional):
            return (
                self._has_side_effects(expr.cond)
                or self._has_side_effects(expr.then_expr)
                or self._has_side_effects(expr.else_expr)
            )
        if isinstance(expr, cast.Comma):
            return any(self._has_side_effects(e) for e in expr.exprs)
        if isinstance(expr, cast.Cast):
            return self._has_side_effects(expr.operand)
        if isinstance(expr, cast.Subscript):
            return self._has_side_effects(expr.base) or self._has_side_effects(
                expr.index
            )
        if isinstance(expr, cast.Member):
            return self._has_side_effects(expr.base)
        return False

    # -- rvalue lowering -----------------------------------------------

    def operand(self, expr: cast.Expr) -> Operand:
        """Lower an rvalue expression, emitting side effects; return the
        operand holding its value."""
        if isinstance(expr, cast.IntLit):
            return Const(expr.value)
        if isinstance(expr, cast.FloatLit):
            return Const(expr.value)
        if isinstance(expr, cast.StringLit):
            self.program.ensure_string_literal_var()
            return AddrOf(Ref(STRING_LIT_VAR))

        if isinstance(expr, cast.Ident):
            unique = self.resolve(expr.name)
            if unique is None and expr.name in self.program.global_types:
                unique = expr.name
            if unique is not None:
                return Ref(unique)
            fn_type = self.program.function_type(expr.name)
            if fn_type is not None:
                return AddrOf(Ref(expr.name))
            raise SimplifyError(f"undeclared identifier '{expr.name}'", expr.loc)

        if isinstance(expr, cast.Unary):
            return self._operand_unary(expr)
        if isinstance(expr, cast.Binary):
            return self._operand_binary(expr)
        if isinstance(expr, cast.Assign):
            return self._operand_assign(expr)
        if isinstance(expr, cast.Conditional):
            return self._operand_conditional(expr)
        if isinstance(expr, cast.Call):
            op = self.handle_call(expr, want_value=True)
            assert op is not None
            return op
        if isinstance(expr, (cast.Subscript, cast.Member)):
            ref, _ = self.lvalue(expr)
            return ref
        if isinstance(expr, cast.Cast):
            if isinstance(expr.operand, cast.Call) and _is_pointerish(
                expr.to_type
            ):
                # `(T *) f()` with an implicitly-declared f: the result
                # temporary must carry the pointer type, or the value
                # is lost to the analysis.
                op = self.handle_call(
                    expr.operand, want_value=True, result_type=expr.to_type
                )
                assert op is not None
                return op
            return self.operand(expr.operand)
        if isinstance(expr, (cast.SizeofType, cast.SizeofExpr)):
            return Const(4)
        if isinstance(expr, cast.Comma):
            result: Operand = Const(0)
            for item in expr.exprs:
                result = self.operand(item)
            return result
        if isinstance(expr, cast.InitList):
            raise SimplifyError(
                "initializer list outside a declaration", expr.loc
            )
        raise SimplifyError(f"cannot lower {type(expr).__name__}")

    def _operand_unary(self, expr: cast.Unary) -> Operand:
        op = expr.op
        if op == "&":
            inner = expr.operand
            if isinstance(inner, cast.Unary) and inner.op == "*":
                return self.operand(inner.operand)  # &*e == e
            if isinstance(inner, cast.Ident):
                if (
                    self.resolve(inner.name) is None
                    and inner.name not in self.program.global_types
                    and self.program.function_type(inner.name) is not None
                ):
                    return AddrOf(Ref(inner.name))  # &f == f
            ref, _ = self.lvalue(inner)
            if ref.deref and not ref.path:
                return Ref(ref.base)  # &(*p) == p
            return AddrOf(ref)
        if op == "*":
            ref, _ = self.lvalue(expr)
            return ref
        if op in ("++pre", "--pre", "++post", "--post"):
            return self._operand_incdec(expr)
        # Arithmetic/logical unary operators.
        inner_op = self.operand(expr.operand)
        if isinstance(inner_op, Const) and isinstance(inner_op.value, (int, float)):
            value = inner_op.value
            if op == "-":
                return Const(-value)
            if op == "+":
                return Const(value)
            if op == "~" and isinstance(value, int):
                return Const(~value)
            if op == "!":
                return Const(int(not value))
        ctype = self.stype(expr)
        temp = self.fresh_temp(ctype)
        stmt = BasicStmt(
            BasicKind.UNOP,
            lhs=Ref(temp),
            op=op,
            operands=(inner_op,),
            lhs_type=ctype,
        )
        self.emit(stmt, expr.loc)
        return Ref(temp)

    def _operand_incdec(self, expr: cast.Unary) -> Operand:
        ref, ctype = self.lvalue(expr.operand)
        delta_op = "+" if expr.op in ("++pre", "++post") else "-"
        if expr.op in ("++post", "--post"):
            temp = self.fresh_temp(ctype)
            self._emit_assign(Ref(temp), ctype, ref)
            self._emit_incdec(ref, ctype, delta_op, expr.loc)
            return Ref(temp)
        self._emit_incdec(ref, ctype, delta_op, expr.loc)
        return ref

    def _emit_incdec(
        self, ref: Ref, ctype: CType, delta_op: str, loc: SourceLoc
    ) -> None:
        stmt = BasicStmt(
            BasicKind.BINOP,
            lhs=ref,
            op=delta_op,
            operands=(ref, Const(1)),
            lhs_type=ctype,
        )
        self.emit(stmt, loc)

    def _operand_binary(self, expr: cast.Binary) -> Operand:
        if expr.op in ("&&", "||"):
            return self._operand_logical(expr)
        left = self.operand(expr.left)
        right = self.operand(expr.right)
        if (
            isinstance(left, Const)
            and isinstance(right, Const)
            and isinstance(left.value, (int, float))
            and isinstance(right.value, (int, float))
        ):
            folded = _fold_binary(expr.op, left.value, right.value)
            if folded is not None:
                return Const(folded)
        ctype = self.stype(expr)
        temp = self.fresh_temp(ctype)
        stmt = BasicStmt(
            BasicKind.BINOP,
            lhs=Ref(temp),
            op=expr.op,
            operands=(left, right),
            lhs_type=ctype,
        )
        self.emit(stmt, expr.loc)
        return Ref(temp)

    def _may_trap(self, expr: cast.Expr) -> bool:
        """Whether evaluating ``expr`` may fault (dereference, member
        access through a pointer, indexing) — such expressions must
        stay behind the short-circuit."""
        if isinstance(expr, cast.Unary):
            if expr.op == "*":
                return True
            if expr.op == "&":
                return False  # &e computes an address, no access
            return self._may_trap(expr.operand)
        if isinstance(expr, cast.Member):
            return expr.arrow or self._may_trap(expr.base)
        if isinstance(expr, cast.Subscript):
            return True
        if isinstance(expr, cast.Call):
            return True
        if isinstance(expr, cast.Binary):
            return self._may_trap(expr.left) or self._may_trap(expr.right)
        if isinstance(expr, cast.Conditional):
            return (
                self._may_trap(expr.cond)
                or self._may_trap(expr.then_expr)
                or self._may_trap(expr.else_expr)
            )
        if isinstance(expr, cast.Cast):
            return self._may_trap(expr.operand)
        if isinstance(expr, cast.Comma):
            return any(self._may_trap(e) for e in expr.exprs)
        return False

    def _operand_logical(self, expr: cast.Binary) -> Operand:
        """Short-circuit && and ||, preserving conditional side effects
        and keeping possibly-trapping operands behind the guard."""
        if not self._has_side_effects(expr.right) and not self._may_trap(
            expr.right
        ):
            left = self.operand(expr.left)
            right = self.operand(expr.right)
            temp = self.fresh_temp(INT)
            stmt = BasicStmt(
                BasicKind.BINOP,
                lhs=Ref(temp),
                op=expr.op,
                operands=(left, right),
                lhs_type=INT,
            )
            self.emit(stmt, expr.loc)
            return Ref(temp)
        left = self.operand(expr.left)
        temp = self.fresh_temp(INT)

        def eval_right() -> None:
            right = self.operand(expr.right)
            self.emit(
                BasicStmt(
                    BasicKind.UNOP,
                    lhs=Ref(temp),
                    op="!",
                    operands=(right,),
                    lhs_type=INT,
                ),
                expr.loc,
            )
            self.emit(
                BasicStmt(
                    BasicKind.UNOP,
                    lhs=Ref(temp),
                    op="!",
                    operands=(Ref(temp),),
                    lhs_type=INT,
                ),
                expr.loc,
            )

        def const_result(value: int) -> None:
            self.emit(
                BasicStmt(
                    BasicKind.CONST,
                    lhs=Ref(temp),
                    rvalue=Const(value),
                    lhs_type=INT,
                ),
                expr.loc,
            )

        then_block = self.collect(
            eval_right if expr.op == "&&" else lambda: const_result(1)
        )
        else_block = self.collect(
            (lambda: const_result(0)) if expr.op == "&&" else eval_right
        )
        self.emit(SIf(left, then_block, else_block), expr.loc)
        return Ref(temp)

    def _operand_assign(self, expr: cast.Assign) -> Operand:
        self.do_assign(expr)
        ref, _ = self.lvalue(expr.target)
        return ref

    def _operand_conditional(self, expr: cast.Conditional) -> Operand:
        cond = self.operand(expr.cond)
        ctype = decay(self.stype(expr))
        if isinstance(ctype, VoidType):
            then_block = self.collect(lambda: self.operand(expr.then_expr))
            else_block = self.collect(lambda: self.operand(expr.else_expr))
            self.emit(SIf(cond, then_block, else_block), expr.loc)
            return Const(0)
        temp = self.fresh_temp(ctype)

        def arm(sub: cast.Expr):
            def run() -> None:
                value = self.operand(sub)
                self._emit_assign(Ref(temp), ctype, value)

            return run

        then_block = self.collect(arm(expr.then_expr))
        else_block = self.collect(arm(expr.else_expr))
        self.emit(SIf(cond, then_block, else_block), expr.loc)
        return Ref(temp)

    # -- assignments -----------------------------------------------------

    def _emit_assign(
        self, lhs: Ref, lhs_type: CType, value: Operand, loc: SourceLoc | None = None
    ) -> None:
        if isinstance(value, AddrOf):
            kind = BasicKind.ADDR
        elif isinstance(value, Const):
            kind = BasicKind.CONST
        else:
            kind = BasicKind.COPY
        stmt = BasicStmt(kind, lhs=lhs, rvalue=value, lhs_type=lhs_type)
        self.emit(stmt, loc or stmt.loc)

    def do_assign(self, expr: cast.Assign) -> None:
        """Lower an assignment (simple or compound)."""
        if expr.op == "=":
            if isinstance(expr.value, cast.Call):
                lhs, lhs_t = self.lvalue(expr.target)
                self.handle_call(expr.value, want_value=False, lhs=lhs, lhs_type=lhs_t)
                return
            value = self.operand(expr.value)
            lhs, lhs_t = self.lvalue(expr.target)
            self._emit_assign(lhs, lhs_t, value, expr.loc)
            return
        # Compound assignment: lhs = lhs op rhs.
        binop = expr.op[:-1]
        value = self.operand(expr.value)
        lhs, lhs_t = self.lvalue(expr.target)
        stmt = BasicStmt(
            BasicKind.BINOP,
            lhs=lhs,
            op=binop,
            operands=(lhs, value),
            lhs_type=lhs_t,
        )
        self.emit(stmt, expr.loc)

    # -- calls -----------------------------------------------------------

    def handle_call(
        self,
        expr: cast.Call,
        want_value: bool,
        lhs: Ref | None = None,
        lhs_type: CType | None = None,
        result_type: CType | None = None,
    ) -> Operand | None:
        callee = expr.func
        # (*fp)(...) and (**fp)(...) are the same call as fp(...).
        while isinstance(callee, cast.Unary) and callee.op == "*":
            callee = callee.operand

        callee_name: str | None = None
        callee_ptr: str | None = None
        return_type: CType

        if isinstance(callee, cast.Ident) and self.resolve(callee.name) is None and (
            callee.name not in self.program.global_types
        ):
            fn_type = self.program.function_type(callee.name)
            if fn_type is None:
                fn_type = self.program.implicit_function(callee.name, callee.loc)
            callee_name = callee.name
            return_type = fn_type.return_type
        else:
            callee_t = decay(self.stype(callee))
            if isinstance(callee_t, PointerType) and isinstance(
                callee_t.pointee, FunctionType
            ):
                return_type = callee_t.pointee.return_type
            else:
                raise SimplifyError(
                    f"call through non-function-pointer type {callee_t}",
                    expr.loc,
                )
            callee_ptr = self.plain_var_value(callee)

        if lhs is not None and isinstance(return_type, VoidType):
            raise SimplifyError("using the value of a void call", expr.loc)

        args = tuple(self.plain_operand(arg) for arg in expr.args)

        is_alloc = callee_name in HEAP_ALLOCATORS
        kind = BasicKind.ALLOC if is_alloc else BasicKind.CALL

        if lhs is None and (want_value or is_alloc) and not isinstance(
            return_type, VoidType
        ):
            result_t = result_type or return_type
            temp = self.fresh_temp(result_t)
            lhs = Ref(temp)
            lhs_type = result_t

        stmt = BasicStmt(
            kind,
            lhs=lhs,
            callee=callee_name,
            callee_ptr=callee_ptr,
            args=args,
            lhs_type=lhs_type,
            call_site=self.program.next_call_site(),
        )
        self.emit(stmt, expr.loc)
        if want_value:
            if lhs is None:
                raise SimplifyError("using the value of a void call", expr.loc)
            return lhs
        return None

    def plain_operand(self, expr: cast.Expr) -> Operand:
        """Lower an argument to a constant or a plain variable name."""
        op = self.operand(expr)
        if isinstance(op, Const):
            return op
        if isinstance(op, Ref) and op.is_plain_var:
            ctype = self.var_type(op.base)
            if ctype is not None and not isinstance(ctype, ArrayType):
                return op
        ctype = decay(self.stype(expr))
        temp = self.fresh_temp(ctype)
        if isinstance(op, Ref) and op.is_plain_var and isinstance(
            self.var_type(op.base), ArrayType
        ):
            # Passing an array decays to a pointer to its first element.
            op = AddrOf(Ref(op.base).with_index(IndexClass.ZERO, Const(0)))
        self._emit_assign(Ref(temp), ctype, op)
        return Ref(temp)

    # -- statements --------------------------------------------------------

    def simplify_stmt(self, stmt: cast.Stmt) -> None:
        if isinstance(stmt, cast.ExprStmt):
            self._simplify_expr_stmt(stmt.expr)
        elif isinstance(stmt, cast.DeclStmt):
            self._simplify_decls(stmt.decls)
        elif isinstance(stmt, cast.Compound):
            self.scopes.append({})
            try:
                for child in stmt.stmts:
                    self.simplify_stmt(child)
            finally:
                self.scopes.pop()
        elif isinstance(stmt, cast.If):
            self._simplify_if(stmt)
        elif isinstance(stmt, cast.While):
            self._simplify_while(stmt)
        elif isinstance(stmt, cast.DoWhile):
            self._simplify_do_while(stmt)
        elif isinstance(stmt, cast.For):
            self._simplify_for(stmt)
        elif isinstance(stmt, cast.Switch):
            self._simplify_switch(stmt)
        elif isinstance(stmt, cast.Break):
            self.emit(SBreak(), stmt.loc)
        elif isinstance(stmt, cast.Continue):
            self.emit(SContinue(), stmt.loc)
        elif isinstance(stmt, cast.Return):
            value = None
            if stmt.value is not None:
                value = self.operand(stmt.value)
            self.emit(SReturn(value), stmt.loc)
        elif isinstance(stmt, cast.Label):
            self._simplify_label(stmt)
        elif isinstance(stmt, cast.Empty):
            pass
        elif isinstance(stmt, (cast.Case, cast.Default)):
            raise SimplifyError("'case' label outside a switch", stmt.loc)
        else:
            raise SimplifyError(f"cannot lower {type(stmt).__name__}", stmt.loc)

    def _simplify_expr_stmt(self, expr: cast.Expr) -> None:
        if isinstance(expr, cast.Assign):
            self.do_assign(expr)
        elif isinstance(expr, cast.Call):
            self.handle_call(expr, want_value=False)
        elif isinstance(expr, cast.Comma):
            for item in expr.exprs:
                self._simplify_expr_stmt(item)
        elif isinstance(expr, cast.Unary) and expr.op in (
            "++pre",
            "--pre",
            "++post",
            "--post",
        ):
            ref, ctype = self.lvalue(expr.operand)
            delta_op = "+" if "++" in expr.op else "-"
            self._emit_incdec(ref, ctype, delta_op, expr.loc)
        elif self._has_side_effects(expr):
            self.operand(expr)
        # A pure expression statement is a no-op.

    def _simplify_decls(self, decls: list[cast.VarDecl]) -> None:
        for decl in decls:
            unique = self.declare_local(decl.name, decl.type)
            if decl.init is not None:
                self._init_ref(Ref(unique), decl.type, decl.init)

    def _init_ref(self, ref: Ref, ctype: CType, init: cast.Expr) -> None:
        if isinstance(init, cast.InitList):
            if isinstance(ctype, ArrayType):
                for position, item in enumerate(init.items):
                    index = IndexClass.ZERO if position == 0 else IndexClass.POSITIVE
                    self._init_ref(
                        ref.with_index(index, Const(position)),
                        ctype.element,
                        item,
                    )
                return
            if isinstance(ctype, StructType):
                for field, item in zip(ctype.fields, init.items):
                    self._init_ref(ref.with_field(field.name), field.type, item)
                return
            if len(init.items) == 1:
                self._init_ref(ref, ctype, init.items[0])
                return
            raise SimplifyError("bad initializer list", init.loc)
        if isinstance(init, cast.Call):
            self.handle_call(init, want_value=False, lhs=ref, lhs_type=ctype)
            return
        value = self.operand(init)
        self._emit_assign(ref, ctype, value, init.loc)

    def _lower_condition(self, cond: cast.Expr) -> tuple[SBlock, Operand]:
        """Lower a condition; return (evaluation block, test operand)."""
        block = [None]

        def run() -> None:
            block[0] = self.operand(cond)

        eval_block = self.collect(run)
        return eval_block, block[0]

    def _simplify_if(self, stmt: cast.If) -> None:
        cond = self.operand(stmt.cond)
        then_block = self.collect(lambda: self.simplify_stmt(stmt.then_stmt))
        else_block = None
        if stmt.else_stmt is not None:
            else_block = self.collect(lambda: self.simplify_stmt(stmt.else_stmt))
        self.emit(SIf(cond, then_block, else_block), stmt.loc)

    @staticmethod
    def _const_truth(op: Operand) -> bool | None:
        if isinstance(op, Const) and isinstance(op.value, (int, float)):
            return bool(op.value)
        return None

    def _simplify_while(self, stmt: cast.While) -> None:
        cond_eval, cond = self._lower_condition(stmt.cond)
        body = self.collect(lambda: self.simplify_stmt(stmt.body))
        if self._const_truth(cond) is True:
            cond = None
        self.emit(SWhile(cond, body, cond_eval), stmt.loc)

    def _simplify_do_while(self, stmt: cast.DoWhile) -> None:
        body = self.collect(lambda: self.simplify_stmt(stmt.body))
        cond_eval, cond = self._lower_condition(stmt.cond)
        if self._const_truth(cond) is True:
            cond = None
        self.emit(SDoWhile(body, cond, cond_eval), stmt.loc)

    def _simplify_for(self, stmt: cast.For) -> None:
        self.scopes.append({})
        try:
            def run_init() -> None:
                if stmt.init_decls is not None:
                    self._simplify_decls(stmt.init_decls)
                elif stmt.init is not None:
                    self._simplify_expr_stmt(stmt.init)

            init_block = self.collect(run_init)
            if stmt.cond is not None:
                cond_eval, cond = self._lower_condition(stmt.cond)
                if self._const_truth(cond) is True:
                    cond = None
            else:
                cond_eval, cond = SBlock([]), None
            step_block = self.collect(
                lambda: stmt.step is not None and self._simplify_expr_stmt(stmt.step)
            )
            body = self.collect(lambda: self.simplify_stmt(stmt.body))
            self.emit(SFor(init_block, cond, step_block, body, cond_eval), stmt.loc)
        finally:
            self.scopes.pop()

    def _simplify_switch(self, stmt: cast.Switch) -> None:
        cond = self.operand(stmt.cond)
        switch = SSwitch(cond)
        body_stmts: list[cast.Stmt]
        if isinstance(stmt.body, cast.Compound):
            body_stmts = stmt.body.stmts
        else:
            body_stmts = [stmt.body]

        self.scopes.append({})
        try:
            arms: list[list] = []  # [values, is_default, stmts]
            current: list[cast.Stmt] | None = None
            for item in body_stmts:
                values, is_default, inner = self._peel_case_labels(item)
                if values or is_default:
                    if arms and not arms[-1][2]:
                        # `case 1: case 2: ...` — empty label folds into
                        # the next arm.
                        arms[-1][0] = arms[-1][0] + values
                        arms[-1][1] = arms[-1][1] or is_default
                        current = arms[-1][2]
                        current.extend(inner)
                    else:
                        current = list(inner) if inner else []
                        arms.append([values, is_default, current])
                elif current is not None:
                    current.append(item)
                # Statements before the first case label are unreachable.

            for values, is_default, stmts in arms:
                def run(stmts=stmts) -> None:
                    for child in stmts:
                        self.simplify_stmt(child)

                block = self.collect(run)
                falls_through = not _ends_with_jump(block)
                if block.stmts and isinstance(block.stmts[-1], SBreak):
                    block.stmts.pop()
                    falls_through = False
                switch.cases.append(
                    SSwitchCase(values, block, falls_through)
                )
                if is_default:
                    switch.has_default = True
        finally:
            self.scopes.pop()
        self.emit(switch, stmt.loc)

    def _peel_case_labels(
        self, stmt: cast.Stmt
    ) -> tuple[tuple[int, ...], bool, list[cast.Stmt]]:
        """Collect chained case/default labels and the labeled statement."""
        values: list[int] = []
        is_default = False
        current = stmt
        while True:
            if isinstance(current, cast.Case):
                value = _eval_case_const(current.value)
                if value is None:
                    raise SimplifyError("non-constant case label", current.loc)
                values.append(value)
                if current.stmt is None:
                    return tuple(values), is_default, []
                current = current.stmt
            elif isinstance(current, cast.Default):
                is_default = True
                if current.stmt is None:
                    return tuple(values), is_default, []
                current = current.stmt
            else:
                if values or is_default:
                    return tuple(values), is_default, [current]
                return (), False, []

    def _simplify_label(self, stmt: cast.Label) -> None:
        before = len(self.blocks[-1])
        if stmt.stmt is not None:
            self.simplify_stmt(stmt.stmt)
        if len(self.blocks[-1]) == before:
            self.emit(BasicStmt(BasicKind.NOP), stmt.loc)
        target = self.blocks[-1][before]
        target.labels = target.labels + (stmt.name,)
        self.program.register_label(stmt.name, self.fn.name, target.stmt_id)

    # -- driver ------------------------------------------------------------

    def run(self) -> SimpleFunction:
        def run_body() -> None:
            for child in self.fn.body.stmts:
                self.simplify_stmt(child)

        body = self.collect(run_body)
        params = [(p.name, p.type) for p in self.fn.params]
        return SimpleFunction(
            name=self.fn.name,
            return_type=self.fn.return_type,
            params=params,
            local_types=self.local_types,
            body=body,
            variadic=self.fn.variadic,
        )


def _ends_with_jump(block: SBlock) -> bool:
    if not block.stmts:
        return False
    last = block.stmts[-1]
    return isinstance(last, (SBreak, SContinue, SReturn))


def _eval_case_const(expr: cast.Expr) -> int | None:
    if isinstance(expr, cast.IntLit):
        return expr.value
    if isinstance(expr, cast.Unary) and expr.op == "-":
        inner = _eval_case_const(expr.operand)
        return None if inner is None else -inner
    return None


def _fold_binary(op: str, left, right):
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                return None
            if isinstance(left, int) and isinstance(right, int):
                return left // right
            return left / right
        if op == "%":
            if right == 0 or not isinstance(left, int):
                return None
            return left % right
        if op == "<<":
            return left << right
        if op == ">>":
            return left >> right
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "<":
            return int(left < right)
        if op == ">":
            return int(left > right)
        if op == "<=":
            return int(left <= right)
        if op == ">=":
            return int(left >= right)
    except TypeError:
        return None
    return None


class _ProgramSimplifier:
    """Lowers a whole translation unit."""

    def __init__(self, unit: TranslationUnit, source_lines: int = 0):
        self.unit = unit
        self.global_types: dict[str, CType] = {
            g.name: g.type for g in unit.globals
        }
        self.externals: dict[str, CType] = {}
        self.labels: dict[str, tuple[str, int]] = {}
        self.implicit_decls: dict[str, FunctionType] = {}
        self._call_site_counter = 0
        self.source_lines = source_lines

    def next_call_site(self) -> int:
        self._call_site_counter += 1
        return self._call_site_counter

    def function_type(self, name: str) -> FunctionType | None:
        proto = self.unit.prototypes.get(name)
        if isinstance(proto, FunctionType):
            return proto
        return self.implicit_decls.get(name)

    def implicit_function(self, name: str, loc: SourceLoc) -> FunctionType:
        """Implicit declaration.  Known allocators and pointer-returning
        library functions get their real return type; everything else
        follows C89 (``int name(...)``)."""
        fn_type = self.implicit_decls.get(name)
        if fn_type is None:
            if name in HEAP_ALLOCATORS:
                return_type: CType = PointerType(VOID)
            elif name in _POINTER_RETURNING_EXTERNALS:
                return_type = PointerType(CHAR)
            else:
                return_type = INT
            fn_type = FunctionType(return_type, (), variadic=True)
            self.implicit_decls[name] = fn_type
        return fn_type

    def ensure_string_literal_var(self) -> None:
        self.global_types.setdefault(STRING_LIT_VAR, ArrayType(CHAR, None))

    def register_label(self, name: str, func: str, stmt_id: int) -> None:
        if name in self.labels:
            raise SimplifyError(f"duplicate label '{name}'")
        self.labels[name] = (func, stmt_id)

    def _lower_global_inits(self) -> SBlock:
        stmts: list[Stmt] = []
        for decl in self.unit.globals:
            if decl.init is None:
                continue
            self._lower_global_init(Ref(decl.name), decl.type, decl.init, stmts)
        return SBlock(stmts)

    def _lower_global_init(
        self, ref: Ref, ctype: CType, init: cast.Expr, out: list[Stmt]
    ) -> None:
        if isinstance(init, cast.InitList):
            if isinstance(ctype, ArrayType):
                for position, item in enumerate(init.items):
                    index = IndexClass.ZERO if position == 0 else IndexClass.POSITIVE
                    self._lower_global_init(
                        ref.with_index(index, Const(position)),
                        ctype.element,
                        item,
                        out,
                    )
                return
            if isinstance(ctype, StructType):
                for field, item in zip(ctype.fields, init.items):
                    self._lower_global_init(
                        ref.with_field(field.name), field.type, item, out
                    )
                return
            if len(init.items) == 1:
                self._lower_global_init(ref, ctype, init.items[0], out)
                return
            raise SimplifyError("bad global initializer list", init.loc)
        operand = self._global_const_operand(init)
        if isinstance(operand, AddrOf):
            kind = BasicKind.ADDR
        else:
            kind = BasicKind.CONST
        out.append(BasicStmt(kind, lhs=ref, rvalue=operand, lhs_type=ctype))

    def _global_const_operand(self, expr: cast.Expr) -> Operand:
        if isinstance(expr, cast.IntLit):
            return Const(expr.value)
        if isinstance(expr, cast.FloatLit):
            return Const(expr.value)
        if isinstance(expr, cast.StringLit):
            self.ensure_string_literal_var()
            return AddrOf(Ref(STRING_LIT_VAR))
        if isinstance(expr, cast.Cast):
            return self._global_const_operand(expr.operand)
        if isinstance(expr, cast.Ident):
            if self.function_type(expr.name) is not None and (
                expr.name not in self.global_types
            ):
                return AddrOf(Ref(expr.name))
            if expr.name in self.global_types:
                ctype = self.global_types[expr.name]
                if isinstance(ctype, ArrayType):
                    return AddrOf(
                        Ref(expr.name).with_index(IndexClass.ZERO, Const(0))
                    )
            raise SimplifyError(
                f"unsupported global initializer '{expr.name}'", expr.loc
            )
        if isinstance(expr, cast.Unary) and expr.op == "&":
            inner = expr.operand
            if isinstance(inner, cast.Ident):
                return AddrOf(Ref(inner.name))
            if isinstance(inner, cast.Subscript) and isinstance(
                inner.base, cast.Ident
            ):
                index = IndexClass.UNKNOWN
                index_op = None
                if isinstance(inner.index, cast.IntLit):
                    index = (
                        IndexClass.ZERO
                        if inner.index.value == 0
                        else IndexClass.POSITIVE
                    )
                    index_op = Const(inner.index.value)
                return AddrOf(Ref(inner.base.name).with_index(index, index_op))
            if isinstance(inner, cast.Member) and isinstance(
                inner.base, cast.Ident
            ) and not inner.arrow:
                return AddrOf(Ref(inner.base.name).with_field(inner.field))
        if isinstance(expr, (cast.SizeofType, cast.SizeofExpr)):
            return Const(4)
        raise SimplifyError(
            f"unsupported constant initializer {type(expr).__name__}",
            getattr(expr, "loc", None),
        )

    def run(self) -> SimpleProgram:
        functions: dict[str, SimpleFunction] = {}
        global_init = self._lower_global_inits()
        for fn in self.unit.functions:
            functions[fn.name] = _FunctionSimplifier(self, fn).run()
        defined = set(functions)
        externals = {
            name: proto
            for name, proto in self.unit.prototypes.items()
            if name not in defined
        }
        for name, fn_type in self.implicit_decls.items():
            externals.setdefault(name, fn_type)
        return SimpleProgram(
            functions=functions,
            global_types=dict(self.global_types),
            externals=externals,
            labels=dict(self.labels),
            global_init=global_init,
            source_lines=self.source_lines,
        )


def simplify_program(unit: TranslationUnit, source_lines: int = 0) -> SimpleProgram:
    """Lower a parsed translation unit to SIMPLE."""
    from repro import obs

    # timed, not span: feeds the "simple.simplify" phase histogram the
    # daemon's merged metrics aggregate.
    with obs.timed("simple.simplify"):
        program = _ProgramSimplifier(unit, source_lines).run()
    if obs.active():
        obs.count("simple.programs")
        obs.count("simple.basic_stmts", program.count_basic_stmts())
        obs.count("simple.functions", len(program.functions))
    return program


def simplify_source(source: str, filename: str = "<source>") -> SimpleProgram:
    """Parse and lower C source text to SIMPLE in one step."""
    unit = parse(source, filename)
    lines = source.count("\n") + 1
    return simplify_program(unit, source_lines=lines)
