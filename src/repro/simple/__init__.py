"""The SIMPLE intermediate representation and the simplification pass.

SIMPLE is McCAT's structured IR (Hendren et al., LCPC '92): complex C
statements are compiled into *basic statements* in which every variable
reference has at most one level of pointer indirection, conditions are
side-effect free, and procedure arguments are constants or variable
names.  Control flow is kept compositional (``if``/``while``/``do``/
``for``/``switch``/``break``/``continue``/``return``), which is what
lets the points-to analysis of :mod:`repro.core` be defined by
structural induction (Figure 1 of the paper).
"""

from repro.simple.ir import (
    AddrOf,
    BasicStmt,
    Const,
    IndexClass,
    Operand,
    Ref,
    SBlock,
    SBreak,
    SContinue,
    SDoWhile,
    SFor,
    SIf,
    SReturn,
    SSwitch,
    SWhile,
    Selector,
    FieldSel,
    IndexSel,
    SimpleFunction,
    SimpleProgram,
    Stmt,
)
from repro.simple.simplify import SimplifyError, simplify_program, simplify_source
from repro.simple.printer import print_program, print_function

__all__ = [
    "AddrOf",
    "BasicStmt",
    "Const",
    "IndexClass",
    "Operand",
    "Ref",
    "SBlock",
    "SBreak",
    "SContinue",
    "SDoWhile",
    "SFor",
    "SIf",
    "SReturn",
    "SSwitch",
    "SWhile",
    "Selector",
    "FieldSel",
    "IndexSel",
    "SimpleFunction",
    "SimpleProgram",
    "Stmt",
    "SimplifyError",
    "simplify_program",
    "simplify_source",
    "print_program",
    "print_function",
]
