"""Pretty-printer for SIMPLE programs (debugging / example output)."""

from __future__ import annotations

from repro.simple.ir import (
    BasicStmt,
    SBlock,
    SBreak,
    SContinue,
    SDoWhile,
    SFor,
    SIf,
    SReturn,
    SSwitch,
    SWhile,
    SimpleFunction,
    SimpleProgram,
    Stmt,
)


def _format_stmt(stmt: Stmt, indent: int, out: list[str]) -> None:
    pad = "    " * indent
    prefix = "".join(f"{label}: " for label in stmt.labels)

    if isinstance(stmt, BasicStmt):
        out.append(f"{pad}{prefix}{stmt};")
        return
    if isinstance(stmt, SBlock):
        for child in stmt.stmts:
            _format_stmt(child, indent, out)
        return
    if isinstance(stmt, SIf):
        out.append(f"{pad}{prefix}if ({stmt.cond}) {{")
        _format_stmt(stmt.then_block, indent + 1, out)
        if stmt.else_block is not None and stmt.else_block.stmts:
            out.append(f"{pad}}} else {{")
            _format_stmt(stmt.else_block, indent + 1, out)
        out.append(f"{pad}}}")
        return
    if isinstance(stmt, SWhile):
        cond = "1" if stmt.cond is None else str(stmt.cond)
        if stmt.cond_eval.stmts:
            out.append(f"{pad}{prefix}while [eval] ({cond}) {{")
            _format_stmt(stmt.cond_eval, indent + 1, out)
            out.append(f"{pad}  [test] {{")
        else:
            out.append(f"{pad}{prefix}while ({cond}) {{")
        _format_stmt(stmt.body, indent + 1, out)
        out.append(f"{pad}}}")
        return
    if isinstance(stmt, SDoWhile):
        cond = "1" if stmt.cond is None else str(stmt.cond)
        out.append(f"{pad}{prefix}do {{")
        _format_stmt(stmt.body, indent + 1, out)
        if stmt.cond_eval.stmts:
            _format_stmt(stmt.cond_eval, indent + 1, out)
        out.append(f"{pad}}} while ({cond});")
        return
    if isinstance(stmt, SFor):
        out.append(f"{pad}{prefix}for {{")
        if stmt.init.stmts:
            out.append(f"{pad}  init:")
            _format_stmt(stmt.init, indent + 1, out)
        if stmt.cond_eval.stmts:
            out.append(f"{pad}  cond_eval:")
            _format_stmt(stmt.cond_eval, indent + 1, out)
        cond = "1" if stmt.cond is None else str(stmt.cond)
        out.append(f"{pad}  cond: {cond}")
        if stmt.step.stmts:
            out.append(f"{pad}  step:")
            _format_stmt(stmt.step, indent + 1, out)
        out.append(f"{pad}  body:")
        _format_stmt(stmt.body, indent + 1, out)
        out.append(f"{pad}}}")
        return
    if isinstance(stmt, SSwitch):
        out.append(f"{pad}{prefix}switch ({stmt.cond}) {{")
        for case in stmt.cases:
            if case.values:
                label = " ".join(f"case {v}:" for v in case.values)
            else:
                label = "default:"
            through = "  /* falls through */" if case.falls_through else ""
            out.append(f"{pad}  {label}{through}")
            _format_stmt(case.body, indent + 1, out)
        out.append(f"{pad}}}")
        return
    if isinstance(stmt, SBreak):
        out.append(f"{pad}{prefix}break;")
        return
    if isinstance(stmt, SContinue):
        out.append(f"{pad}{prefix}continue;")
        return
    if isinstance(stmt, SReturn):
        if stmt.value is None:
            out.append(f"{pad}{prefix}return;")
        else:
            out.append(f"{pad}{prefix}return {stmt.value};")
        return
    out.append(f"{pad}{prefix}<{type(stmt).__name__}>")


def print_function(fn: SimpleFunction) -> str:
    """Render one SIMPLE function as text."""
    params = ", ".join(f"{t} {n}" for n, t in fn.params)
    out = [f"{fn.return_type} {fn.name}({params})", "{"]
    locals_ = {
        name: ctype
        for name, ctype in sorted(fn.local_types.items())
    }
    for name, ctype in locals_.items():
        out.append(f"    {ctype} {name};")
    if locals_:
        out.append("")
    _format_stmt(fn.body, 1, out)
    out.append("}")
    return "\n".join(out)


def print_program(program: SimpleProgram) -> str:
    """Render a whole SIMPLE program as text."""
    out = []
    for name, ctype in sorted(program.global_types.items()):
        out.append(f"{ctype} {name};")
    if program.global_init.stmts:
        out.append("/* global initializers */")
        _format_stmt(program.global_init, 0, out)
    out.append("")
    for fn in program.functions.values():
        out.append(print_function(fn))
        out.append("")
    return "\n".join(out)
