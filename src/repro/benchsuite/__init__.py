"""The benchmark suite of the paper's evaluation (Tables 2-6).

The original 17 C programs (plus the `livc` function-pointer study)
are 1990s sources we do not have; :mod:`repro.benchsuite.programs`
provides synthetic equivalents of the same names, each written to
exercise the pointer features the paper attributes to its namesake
(see the per-program docstrings and DESIGN.md §3).
:mod:`repro.benchsuite.livc` generates the livermore-loops-style
function-pointer workload; :mod:`repro.benchsuite.generator` produces
random pointer programs for stress and property testing.
"""

from pathlib import Path

from repro.benchsuite.programs import BENCHMARKS, Benchmark, get_benchmark
from repro.benchsuite.livc import livc_source
from repro.benchsuite.generator import generate_program
from repro.benchsuite.perfsuite import PERF_BENCHMARKS


def materialize_suite(directory) -> list[Path]:
    """Write every benchmark to ``<directory>/<name>.c``.

    Gives the file-oriented drivers (``repro-pta batch DIR``, external
    tools) a real on-disk copy of the suite; returns the sorted paths.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for name in sorted(BENCHMARKS):
        path = directory / f"{name}.c"
        path.write_text(BENCHMARKS[name].source)
        paths.append(path)
    return paths


__all__ = [
    "BENCHMARKS",
    "PERF_BENCHMARKS",
    "Benchmark",
    "get_benchmark",
    "livc_source",
    "generate_program",
    "materialize_suite",
]
