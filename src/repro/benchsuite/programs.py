"""Synthetic equivalents of the paper's 17 benchmark programs.

Each program is written in the supported C subset to exercise the
pointer behaviour the paper attributes to its namesake: e.g.
``clinpack`` passes arrays through pointer parameters and indexes them
as ``x[i][j]``; ``xref`` builds a binary tree on the heap through a
``struct`` with recursive pointers; ``toplev`` drives a table of
function pointers; ``lws`` has large per-function abstract stacks and
many formal-parameter-induced relationships.  Absolute counts differ
from the paper's (the sources are not the originals) but the
qualitative behaviour each table reports is preserved; see
EXPERIMENTS.md.

Every program is also *executable* on the concrete SIMPLE machine
(:mod:`repro.interp`), which the differential soundness harness relies
on: programs avoid undefined behaviour, terminate within a few hundred
thousand steps, and use only the modeled externals (``malloc``-family
allocation and pure libc calls).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Benchmark:
    name: str
    description: str
    source: str


GENETIC = r"""
/* Genetic algorithm for sorting: populations as pointer-indexed
   chromosome arrays, fitness via function parameters, tournament
   selection and mutation through roving pointers. */
struct chrom { int genes[16]; int fitness; struct chrom *mate; };

struct chrom pool[32];
struct chrom scratch[32];
struct chrom *best;
struct chrom *worst;
int seed;
int generation_no;

int rnd(int n) {
    seed = seed * 1103515245 + 12345;
    if (seed < 0) seed = -seed;
    if (n <= 0) return 0;
    return seed % n;
}

int fitness_of(struct chrom *c) {
    int i, f;
    f = 0;
    for (i = 1; i < 16; i++) {
        if (c->genes[i - 1] <= c->genes[i]) f = f + 1;
    }
    c->fitness = f;
    return f;
}

void init_chrom(struct chrom *c) {
    int i;
    for (i = 0; i < 16; i++) {
        c->genes[i] = rnd(100);
    }
    c->mate = 0;
    fitness_of(c);
}

void copy_chrom(struct chrom *dst, struct chrom *src) {
    int i;
    for (i = 0; i < 16; i++)
        dst->genes[i] = src->genes[i];
    dst->fitness = src->fitness;
    dst->mate = src->mate;
}

void crossover(struct chrom *a, struct chrom *b, struct chrom *out) {
    int i, cut;
    cut = rnd(16);
    for (i = 0; i < 16; i++) {
        if (i < cut) out->genes[i] = a->genes[i];
        else out->genes[i] = b->genes[i];
    }
    out->mate = 0;
    fitness_of(out);
}

void mutate(struct chrom *c, int rate) {
    int i, j, tmp;
    for (i = 0; i < 16; i++) {
        if (rnd(100) < rate) {
            j = rnd(16);
            tmp = c->genes[i];
            c->genes[i] = c->genes[j];
            c->genes[j] = tmp;
        }
    }
    fitness_of(c);
}

struct chrom *select_parent(void) {
    struct chrom *cand, *rival;
    cand = &pool[rnd(32)];
    rival = &pool[rnd(32)];
    if (rival->fitness > cand->fitness)
        cand = rival;
    P1: return cand;
}

struct chrom *find_best(void) {
    struct chrom *scan, *champion;
    int i;
    champion = &pool[0];
    for (i = 1; i < 32; i++) {
        scan = &pool[i];
        if (scan->fitness > champion->fitness) champion = scan;
    }
    return champion;
}

struct chrom *find_worst(void) {
    struct chrom *scan, *loser;
    int i;
    loser = &pool[0];
    for (i = 1; i < 32; i++) {
        scan = &pool[i];
        if (scan->fitness < loser->fitness) loser = scan;
    }
    return loser;
}

int average_fitness(void) {
    int i, total;
    total = 0;
    for (i = 0; i < 32; i++)
        total += pool[i].fitness;
    return total / 32;
}

void generation(void) {
    struct chrom *ma, *pa;
    struct chrom *slot;
    int i;
    generation_no++;
    for (i = 0; i < 32; i++) {
        ma = select_parent();
        pa = select_parent();
        ma->mate = pa;
        crossover(ma, pa, &scratch[i]);
        mutate(&scratch[i], 5);
    }
    best = find_best();            /* elitism: keep the champion */
    copy_chrom(&scratch[0], best);
    for (i = 0; i < 32; i++)
        copy_chrom(&pool[i], &scratch[i]);
}

int main() {
    int g;
    seed = 42;
    generation_no = 0;
    best = 0;
    worst = 0;
    for (g = 0; g < 32; g++) init_chrom(&pool[g]);
    for (g = 0; g < 6; g++) generation();
    best = find_best();
    worst = find_worst();
    P2: return best->fitness - worst->fitness + average_fitness();
}
"""


DRY = r"""
/* Dhrystone-style benchmark: records, pointer chains between two
   record variables, enum-like discriminants, by-reference outs,
   character and string handling helpers. */
struct record {
    struct record *ptr_comp;
    int discr;
    int enum_comp;
    int int_comp;
    char string_comp[31];
};

struct record *ptr_glob;
struct record *next_ptr_glob;
int int_glob;
char ch_1_glob;
char ch_2_glob;
int arr_1_glob[50];
int arr_2_glob[50][50];

int func1(char ch_1, char ch_2) {
    char ch_1_loc, ch_2_loc;
    ch_1_loc = ch_1;
    ch_2_loc = ch_1_loc;
    if (ch_2_loc != ch_2)
        return 0;   /* ident 1 */
    ch_1_glob = ch_1_loc;
    return 1;       /* ident 2 */
}

int func2(char *str_1_par, char *str_2_par) {
    int int_loc;
    char ch_loc;
    int_loc = 2;
    ch_loc = 'A';
    while (int_loc <= 2) {
        if (func1(str_1_par[int_loc], str_2_par[int_loc + 1]) == 0) {
            ch_loc = 'A';
            int_loc += 1;
        } else {
            break;
        }
    }
    if (ch_loc >= 'W' && ch_loc < 'Z')
        int_loc = 7;
    if (ch_loc == 'R')
        return 1;
    return 0;
}

int func3(int enum_par) {
    int enum_loc;
    enum_loc = enum_par;
    if (enum_loc == 2)
        return 1;
    return 0;
}

void proc6(int enum_val_par, int *enum_ref_par) {
    *enum_ref_par = enum_val_par;
    if (!func3(enum_val_par))
        *enum_ref_par = 3;
    switch (enum_val_par) {
        case 0: *enum_ref_par = 0; break;
        case 1:
            if (int_glob > 100) *enum_ref_par = 0;
            else *enum_ref_par = 4;
            break;
        case 2: *enum_ref_par = 1; break;
        case 4: break;
        default: *enum_ref_par = 2;
    }
}

void proc7(int int_1_par, int int_2_par, int *int_par_ref) {
    int int_loc;
    int_loc = int_1_par + 2;
    *int_par_ref = int_2_par + int_loc;
}

void proc8(int *arr_1_par, int (*arr_2_par)[50], int int_1_par, int int_2_par) {
    int int_index, int_loc;
    int_loc = int_1_par + 5;
    arr_1_par[int_loc] = int_2_par;
    arr_1_par[int_loc + 1] = arr_1_par[int_loc];
    arr_1_par[int_loc + 30] = int_loc;
    for (int_index = int_loc; int_index <= int_loc + 1; int_index++)
        arr_2_par[int_loc][int_index] = int_loc;
    arr_2_par[int_loc][int_loc - 1] += 1;
    arr_2_par[int_loc + 20][int_loc] = arr_1_par[int_loc];
    int_glob = 5;
}

void proc5(void) {
    ch_1_glob = 'A';
    int_glob = 0;
}

void proc4(void) {
    int bool_loc;
    bool_loc = ch_1_glob == 'A';
    bool_loc = bool_loc || (int_glob == 0);
    ch_2_glob = 'B';
}

void proc3(struct record **ptr_ref_par) {
    if (ptr_glob != 0)
        *ptr_ref_par = ptr_glob->ptr_comp;
    proc7(10, int_glob, &ptr_glob->int_comp);
}

void proc2(int *int_par_ref) {
    int int_loc;
    int enum_loc;
    int_loc = *int_par_ref + 10;
    enum_loc = 0;
    while (enum_loc == 0) {
        if (ch_1_glob == 'A') {
            int_loc -= 1;
            *int_par_ref = int_loc - int_glob;
            enum_loc = 1;
        }
    }
}

void proc1(struct record *ptr_val_par) {
    struct record *next_record;
    next_record = ptr_val_par->ptr_comp;
    *ptr_val_par->ptr_comp = *ptr_glob;
    ptr_val_par->int_comp = 5;
    next_record->int_comp = ptr_val_par->int_comp;
    next_record->ptr_comp = ptr_val_par->ptr_comp;
    proc3(&next_record->ptr_comp);
    if (next_record->discr == 0) {
        next_record->int_comp = 6;
        proc6(ptr_val_par->enum_comp, &next_record->enum_comp);
        next_record->ptr_comp = ptr_glob->ptr_comp;
        proc7(next_record->int_comp, 10, &next_record->int_comp);
    } else {
        *ptr_val_par = *ptr_val_par->ptr_comp;
    }
}

int main() {
    struct record glob_rec, next_glob_rec;
    int int_1_loc, int_2_loc, int_3_loc;
    char ch_index;
    int enum_loc;
    int run;

    ptr_glob = &glob_rec;
    next_ptr_glob = &next_glob_rec;
    ptr_glob->ptr_comp = next_ptr_glob;
    ptr_glob->discr = 0;
    ptr_glob->enum_comp = 2;
    ptr_glob->int_comp = 40;
    ptr_glob->string_comp[2] = 'X';
    next_ptr_glob->string_comp[3] = 'Y';
    int_2_loc = 0;
    int_3_loc = 0;

    for (run = 0; run < 8; run++) {
        proc5();
        proc4();
        int_1_loc = 2;
        int_2_loc = 3;
        enum_loc = 1;
        if (!func2(ptr_glob->string_comp, next_ptr_glob->string_comp))
            enum_loc = 0;
        while (int_1_loc < int_2_loc) {
            int_3_loc = 5 * int_1_loc - int_2_loc;
            proc7(int_1_loc, int_2_loc, &int_3_loc);
            int_1_loc += 1;
        }
        proc8(arr_1_glob, arr_2_glob, int_1_loc, int_3_loc);
        proc1(ptr_glob);
        for (ch_index = 'A'; ch_index <= ch_2_glob; ch_index++) {
            if (enum_loc == func1(ch_index, 'C'))
                proc6(0, &enum_loc);
        }
        int_2_loc = int_2_loc * int_1_loc;
        int_1_loc = int_2_loc / int_3_loc;
        int_2_loc = 7 * (int_2_loc - int_3_loc) - int_1_loc;
        proc2(&int_1_loc);
    }
    P1: return int_1_loc + int_2_loc;
}
"""


CLINPACK = r"""
/* C Linpack style: matrices as pointer parameters, x[i][j] indirect
   references through pointers-to-arrays, the daxpy/dgefa/dgesl
   kernels, matrix generation and a residual check. */
double a_storage[16][16];
double b_storage[16];
double x_storage[16];
double residual_work[16];
int lu_seed;

int next_random(void) {
    lu_seed = lu_seed * 3125;
    if (lu_seed < 0) lu_seed = -lu_seed;
    lu_seed = lu_seed % 65536;
    return lu_seed;
}

void matgen(double (*a)[16], int n, double *b) {
    int i, j;
    lu_seed = 1325;
    for (j = 0; j < n; j++) {
        for (i = 0; i < n; i++) {
            a[j][i] = (double) (next_random() - 32768) / 16384.0;
            if (i == j)
                a[j][i] = a[j][i] + 8.0;
        }
    }
    for (i = 0; i < n; i++)
        b[i] = 0.0;
    for (j = 0; j < n; j++)
        for (i = 0; i < n; i++)
            b[i] = b[i] + a[j][i];
}

void daxpy(int n, double da, double *dx, double *dy) {
    int i;
    if (n <= 0) return;
    if (da == 0.0) return;
    for (i = 0; i < n; i++) {
        dy[i] = dy[i] + da * dx[i];
    }
}

double ddot(int n, double *dx, double *dy) {
    int i;
    double dtemp;
    dtemp = 0.0;
    for (i = 0; i < n; i++)
        dtemp = dtemp + dx[i] * dy[i];
    return dtemp;
}

int idamax(int n, double *dx) {
    double dmax, candidate;
    int i, itemp;
    if (n < 1) return -1;
    itemp = 0;
    dmax = dx[0];
    if (dmax < 0.0) dmax = -dmax;
    for (i = 1; i < n; i++) {
        candidate = dx[i];
        if (candidate < 0.0) candidate = -candidate;
        if (candidate > dmax) {
            itemp = i;
            dmax = candidate;
        }
    }
    return itemp;
}

void dscal(int n, double da, double *dx) {
    int i;
    for (i = 0; i < n; i++)
        dx[i] = da * dx[i];
}

double epslon(double x) {
    double eps;
    eps = x;
    if (eps < 0.0) eps = -eps;
    return eps * 0.00000001;
}

void dgefa(double (*a)[16], int n, int *ipvt, int *info) {
    int j, k, l;
    double t;
    *info = 0;
    for (k = 0; k < n - 1; k++) {
        l = idamax(n - k, &a[k][k]) + k;
        ipvt[k] = l;
        L1: t = a[k][l];
        if (t != 0.0) {
            if (l != k) {
                a[k][l] = a[k][k];
                a[k][k] = t;
            }
            dscal(n - k - 1, -1.0 / a[k][k], &a[k][k + 1]);
            for (j = k + 1; j < n; j++) {
                t = a[j][l];
                if (l != k) {
                    a[j][l] = a[j][k];
                    a[j][k] = t;
                }
                daxpy(n - k - 1, t, &a[k][k + 1], &a[j][k + 1]);
            }
        } else {
            *info = k;
        }
    }
    ipvt[n - 1] = n - 1;
    if (a[n - 1][n - 1] == 0.0)
        *info = n - 1;
}

void dgesl(double (*a)[16], int n, int *ipvt, double *b) {
    int k, l;
    double t;
    for (k = 0; k < n - 1; k++) {
        l = ipvt[k];
        t = b[l];
        if (l != k) {
            b[l] = b[k];
            b[k] = t;
        }
        daxpy(n - k - 1, t, &a[k][k + 1], &b[k + 1]);
    }
    for (k = n - 1; k >= 0; k--) {
        b[k] = b[k] / a[k][k];
        t = -b[k];
        daxpy(k, t, &a[k][0], b);
    }
}

void dmxpy(int n, double *y, double (*m)[16], double *x) {
    int i, j;
    for (i = 0; i < n; i++)
        for (j = 0; j < n; j++)
            y[i] = y[i] + x[j] * m[j][i];
}

double check_residual(double (*a)[16], double *b, double *x, int n) {
    int i;
    double resid, value;
    matgen(a, n, residual_work);
    for (i = 0; i < n; i++)
        residual_work[i] = -b[i];
    dmxpy(n, residual_work, a, x);
    resid = 0.0;
    for (i = 0; i < n; i++) {
        value = residual_work[i];
        if (value < 0.0) value = -value;
        if (value > resid) resid = value;
    }
    return resid;
}

int main() {
    int ipvt[16];
    int info;
    int i;
    double total, resid;
    matgen(a_storage, 16, b_storage);
    dgefa(a_storage, 16, ipvt, &info);
    dgesl(a_storage, 16, ipvt, b_storage);
    for (i = 0; i < 16; i++)
        x_storage[i] = b_storage[i];
    total = ddot(16, x_storage, x_storage);
    resid = check_residual(a_storage, b_storage, x_storage, 16);
    P1: return (int) total + (resid < 1000.0) + info;
}
"""


CONFIG = r"""
/* Language-feature checker: many small functions called once each,
   pointer round-trips through helpers, switch tables, unions,
   enums, arrays of structs, function-pointer checks. */
int status;
int *status_ptr;
int check_count;

int check_int(int v) { check_count++; return v + 1; }
int check_char(char c) { check_count++; return c != 0; }
int check_float(double f) { check_count++; return f > 0.0; }
int check_shift(int v) { check_count++; return (v << 3) >> 2; }
int check_bitops(int v) { check_count++; return (v & 12) | (v ^ 5); }

int check_ptr(int *p) {
    check_count++;
    if (p == 0) return 0;
    *p = *p + 1;
    return 1;
}

int check_ptr_ptr(int **pp) {
    int ok;
    check_count++;
    ok = check_ptr(*pp);
    *pp = status_ptr;
    return ok;
}

int check_array(int *arr, int n) {
    int i, sum;
    check_count++;
    sum = 0;
    for (i = 0; i < n; i++) sum += arr[i];
    return sum;
}

int check_struct(void) {
    struct pair { int *first; int *second; } p;
    int a, b;
    check_count++;
    a = 1;
    b = 2;
    p.first = &a;
    p.second = &b;
    *p.first = 1;
    *p.second = 2;
    S1: return *p.first + *p.second;
}

int check_union(void) {
    union blob { int i; char c; } u;
    check_count++;
    u.i = 65;
    return u.i;
}

int check_enum(void) {
    enum color { RED, GREEN = 5, BLUE };
    check_count++;
    return BLUE;
}

int check_struct_array(void) {
    struct cell { int tag; int *link; } cells[4];
    int backing[4];
    int i, total;
    check_count++;
    for (i = 0; i < 4; i++) {
        backing[i] = i * 10;
        cells[i].tag = i;
        cells[i].link = &backing[i];
    }
    total = 0;
    for (i = 0; i < 4; i++)
        total += *cells[i].link;
    return total;
}

int apply_check(int (*check)(int), int arg) {
    check_count++;
    return check(arg);
}

int check_fnptr(void) {
    int (*checks[3])(int);
    int i, acc;
    check_count++;
    checks[0] = check_int;
    checks[1] = check_shift;
    checks[2] = check_bitops;
    acc = 0;
    for (i = 0; i < 3; i++)
        acc += apply_check(checks[i], i + 1);
    return acc;
}

int check_recursion(int n) {
    if (n <= 1) return 1;
    return n * check_recursion(n - 1);
}

int check_switch(int sel) {
    int r;
    switch (sel) {
        case 0: r = check_int(0); break;
        case 1: r = check_char('x'); break;
        case 2: r = check_float(1.5); break;
        case 3: r = check_struct(); break;
        case 4: r = check_union(); break;
        case 5: r = check_enum(); break;
        default: r = -1;
    }
    return r;
}

int check_loops(void) {
    int i, j, acc;
    acc = 0;
    for (i = 0; i < 4; i++)
        for (j = 0; j < 4; j++)
            acc += i * j;
    i = 0;
    while (i < 4) { acc += i; i++; }
    do { acc -= 1; } while (acc > 100);
    return acc;
}

int check_conditional_exprs(void) {
    int a, b;
    a = 5;
    b = a > 3 ? a * 2 : a / 2;
    return (a < b) && (b != 0) || (a == 5);
}

int main() {
    int value;
    int *vp;
    int sel;
    int table[8];
    status = 0;
    check_count = 0;
    value = 41;
    vp = &value;
    status_ptr = &status;
    for (sel = 0; sel < 8; sel++) table[sel] = sel;
    status += check_ptr(vp);
    status += check_ptr_ptr(&vp);
    P1: status += check_array(table, 8);
    for (sel = 0; sel < 7; sel++)
        status += check_switch(sel);
    status += check_loops();
    status += check_struct_array();
    status += check_fnptr();
    status += check_recursion(5);
    status += check_conditional_exprs();
    P2: return status + *vp + check_count;
}
"""


TOPLEV = r"""
/* Compiler driver: a pass table of function pointers over a shared
   tree, option flags, multiple invocation chains to the same passes,
   tree construction from a small token stream. */
struct tree { int op; struct tree *left, *right; int value; };

struct tree *root;
int n_errors;
int n_warnings;
int opt_fold;
int opt_dce;
int tokens[32];
int token_pos;
int n_tokens;

struct tree *new_node(int op, struct tree *l, struct tree *r) {
    struct tree *t;
    t = (struct tree *) malloc(sizeof(struct tree));
    t->op = op;
    t->left = l;
    t->right = r;
    t->value = 0;
    return t;
}

struct tree *new_leaf(int value) {
    struct tree *t;
    t = new_node(0, 0, 0);
    t->value = value;
    return t;
}

int peek_token(void) {
    if (token_pos >= n_tokens) return -1;
    return tokens[token_pos];
}

int next_token(void) {
    int t;
    t = peek_token();
    token_pos++;
    return t;
}

/* grammar: expr := term ('+' term)* ; term := NUMBER */
struct tree *parse_term(void) {
    int t;
    t = next_token();
    if (t < 0) t = 0;
    return new_leaf(t);
}

struct tree *parse_expr(void) {
    struct tree *left, *right;
    left = parse_term();
    while (peek_token() == -2) {  /* '+' sentinel */
        next_token();
        right = parse_term();
        left = new_node(1, left, right);
    }
    return left;
}

int pass_fold(struct tree *t) {
    int changed;
    if (t == 0) return 0;
    changed = pass_fold(t->left);
    changed += pass_fold(t->right);
    if (t->op == 1 && t->left != 0 && t->right != 0) {
        if (t->left->op == 0 && t->right->op == 0) {
            t->value = t->left->value + t->right->value;
            t->op = 0;
            changed++;
        }
    }
    return changed;
}

int pass_count(struct tree *t) {
    if (t == 0) return 0;
    return 1 + pass_count(t->left) + pass_count(t->right);
}

int pass_height(struct tree *t) {
    int lh, rh;
    if (t == 0) return 0;
    lh = pass_height(t->left);
    rh = pass_height(t->right);
    if (lh > rh) return lh + 1;
    return rh + 1;
}

int pass_check(struct tree *t) {
    if (t == 0) return 0;
    if (t->op < 0) n_errors++;
    if (t->op > 1) n_warnings++;
    pass_check(t->left);
    pass_check(t->right);
    P1: return n_errors;
}

int pass_eval(struct tree *t) {
    if (t == 0) return 0;
    if (t->op == 0) return t->value;
    return pass_eval(t->left) + pass_eval(t->right);
}

int (*passes[5])(struct tree *);
int pass_results[5];
int n_passes;

void register_pass(int (*pass)(struct tree *)) {
    if (n_passes < 5) {
        passes[n_passes] = pass;
        n_passes++;
    }
}

void run_passes(struct tree *t) {
    int i;
    int (*pass)(struct tree *);
    for (i = 0; i < n_passes; i++) {
        pass = passes[i];
        P2: pass_results[i] = pass(t);
    }
}

void build_input(void) {
    int i;
    n_tokens = 0;
    for (i = 0; i < 9; i++) {
        tokens[n_tokens++] = i + 1;
        if (i < 8)
            tokens[n_tokens++] = -2;
    }
    token_pos = 0;
}

int main() {
    int total, i;
    opt_fold = 1;
    opt_dce = 0;
    n_passes = 0;
    build_input();
    root = parse_expr();
    register_pass(pass_check);
    if (opt_fold)
        register_pass(pass_fold);
    register_pass(pass_count);
    register_pass(pass_height);
    register_pass(pass_eval);
    run_passes(root);
    run_passes(root->left != 0 ? root->left : root);
    total = 0;
    for (i = 0; i < n_passes; i++)
        total += pass_results[i];
    P3: return total + n_errors + n_warnings;
}
"""


COMPRESS = r"""
/* LZW-style compress + decompress round trip: hash tables as global
   arrays, the code table accessed through pointers, buffered IO
   through roving pointers. */
int htab[512];
int codetab[512];
int prefix[512];
int suffix[512];
char inbuf[256];
char outbuf[512];
char backbuf[512];
char *inptr;
char *outptr;
char *backptr;
int free_ent;
int n_bits;
int compressed_codes[512];
int n_codes;

void output_code(int code) {
    compressed_codes[n_codes] = code;
    n_codes++;
    *outptr = (char) (code & 255);
    outptr++;
    if (code > 255) {
        *outptr = (char) (code >> 8);
        outptr++;
    }
}

int getbyte(void) {
    int code;
    code = *inptr;
    inptr++;
    if (code < 0) return -1;
    return code;
}

void cl_hash(int *tab, int n) {
    int i;
    for (i = 0; i < n; i++)
        tab[i] = -1;
}

int probe(int key) {
    int i;
    i = key % 512;
    if (i < 0) i = -i;
    while (htab[i] != -1 && htab[i] != key)
        i = (i + 1) % 512;
    P1: return i;
}

void compress(void) {
    int ent, c, slot, key;
    cl_hash(htab, 512);
    cl_hash(codetab, 512);
    free_ent = 257;
    n_codes = 0;
    ent = getbyte();
    while ((c = getbyte()) >= 0) {
        key = (c << 8) + ent;
        slot = probe(key);
        if (htab[slot] == key) {
            ent = codetab[slot];
            continue;
        }
        output_code(ent);
        if (free_ent < 512) {
            codetab[slot] = free_ent;
            prefix[free_ent] = ent;
            suffix[free_ent] = c;
            free_ent++;
            htab[slot] = key;
        }
        ent = c;
    }
    output_code(ent);
}

int expand_code(int code, char *dst) {
    /* write the expansion of a code, return bytes written */
    char stack[64];
    int depth, i;
    depth = 0;
    while (code >= 257 && depth < 63) {
        stack[depth] = (char) suffix[code];
        depth++;
        code = prefix[code];
    }
    stack[depth] = (char) code;
    depth++;
    for (i = depth - 1; i >= 0; i--) {
        *dst = stack[i];
        dst++;
    }
    return depth;
}

int decompress(void) {
    int i, written;
    backptr = backbuf;
    written = 0;
    for (i = 0; i < n_codes; i++) {
        written += expand_code(compressed_codes[i], backptr);
        backptr = backbuf + written;
    }
    return written;
}

int verify(int n) {
    int i;
    for (i = 0; i < n && i < 255; i++) {
        if (backbuf[i] != inbuf[i])
            return 0;
    }
    P2: return 1;
}

int main() {
    int i, expanded, ok;
    for (i = 0; i < 255; i++)
        inbuf[i] = (char) (1 + (i % 17));
    inbuf[255] = -1;
    inptr = inbuf;
    outptr = outbuf;
    n_bits = 9;
    compress();
    expanded = decompress();
    ok = verify(expanded);
    return (outptr - outbuf) + ok;
}
"""


MWAY = r"""
/* m-way graph partitioning: adjacency through pointer arrays, gain
   buckets as doubly-linked lists threaded through the vertex array,
   multiple refinement passes with rollback. */
struct vertex { int id; int part; int gain; int locked;
                struct vertex *next, *prev; };

struct vertex verts[24];
struct vertex *buckets[9];
int adj[24][4];
int history[24];
int n_moves;

void bucket_insert(struct vertex **bkt, struct vertex *v) {
    v->next = *bkt;
    v->prev = 0;
    if (*bkt != 0)
        (*bkt)->prev = v;
    *bkt = v;
}

void bucket_remove(struct vertex **bkt, struct vertex *v) {
    if (v->prev != 0)
        v->prev->next = v->next;
    else
        *bkt = v->next;
    if (v->next != 0)
        v->next->prev = v->prev;
    v->next = 0;
    v->prev = 0;
}

int gain_bucket(int gain) {
    int b;
    b = gain + 4;
    if (b < 0) b = 0;
    if (b > 8) b = 8;
    return b;
}

int compute_gain(struct vertex *v) {
    int i, g;
    struct vertex *u;
    g = 0;
    for (i = 0; i < 4; i++) {
        u = &verts[adj[v->id][i]];
        if (u->part == v->part) g--;
        else g++;
    }
    v->gain = g;
    P1: return g;
}

void rebucket(struct vertex *v) {
    int old_bucket;
    old_bucket = gain_bucket(v->gain);
    bucket_remove(&buckets[old_bucket], v);
    compute_gain(v);
    bucket_insert(&buckets[gain_bucket(v->gain)], v);
}

struct vertex *best_move(void) {
    struct vertex *scan;
    int b;
    for (b = 8; b >= 0; b--) {
        scan = buckets[b];
        while (scan != 0) {
            if (!scan->locked)
                return scan;
            scan = scan->next;
        }
    }
    return 0;
}

int cut_size(void) {
    int i, j, cut;
    struct vertex *u;
    cut = 0;
    for (i = 0; i < 24; i++) {
        for (j = 0; j < 4; j++) {
            u = &verts[adj[i][j]];
            if (u->part != verts[i].part) cut++;
        }
    }
    return cut / 2;
}

void move_vertex(struct vertex *v) {
    int i;
    struct vertex *u;
    history[n_moves] = v->id;
    n_moves++;
    v->part = 1 - v->part;
    v->locked = 1;
    for (i = 0; i < 4; i++) {
        u = &verts[adj[v->id][i]];
        if (!u->locked)
            rebucket(u);
    }
}

void unlock_all(void) {
    int i;
    for (i = 0; i < 24; i++)
        verts[i].locked = 0;
}

void fill_buckets(void) {
    int i;
    for (i = 0; i < 9; i++)
        buckets[i] = 0;
    for (i = 0; i < 24; i++) {
        compute_gain(&verts[i]);
        bucket_insert(&buckets[gain_bucket(verts[i].gain)], &verts[i]);
    }
}

int refine_pass(void) {
    struct vertex *v;
    int before, after, moves;
    before = cut_size();
    n_moves = 0;
    fill_buckets();
    for (moves = 0; moves < 8; moves++) {
        v = best_move();
        if (v == 0) break;
        bucket_remove(&buckets[gain_bucket(v->gain)], v);
        bucket_insert(&buckets[gain_bucket(v->gain)], v);
        bucket_remove(&buckets[gain_bucket(v->gain)], v);
        move_vertex(v);
    }
    after = cut_size();
    if (after > before) {
        /* roll back every move of this pass */
        while (n_moves > 0) {
            n_moves--;
            verts[history[n_moves]].part =
                1 - verts[history[n_moves]].part;
        }
        after = before;
    }
    unlock_all();
    P2: return before - after;
}

int main() {
    int i, passes, improved;
    for (i = 0; i < 24; i++) {
        verts[i].id = i;
        verts[i].part = i % 2;
        verts[i].locked = 0;
        adj[i][0] = (i + 1) % 24;
        adj[i][1] = (i + 23) % 24;
        adj[i][2] = (i + 7) % 24;
        adj[i][3] = (i + 17) % 24;
    }
    improved = 0;
    for (passes = 0; passes < 3; passes++)
        improved += refine_pass();
    return cut_size() - improved;
}
"""


BENCH_PART_1 = {
    "genetic": ("Genetic algorithm for sorting.", GENETIC),
    "dry": ("Dhrystone benchmark.", DRY),
    "clinpack": ("The C version of Linpack.", CLINPACK),
    "config": ("Checks features of the C language.", CONFIG),
    "toplev": ("Top level of a compiler driver.", TOPLEV),
    "compress": ("UNIX compress utility.", COMPRESS),
    "mway": ("m-way graph partitioning.", MWAY),
}

# The remaining ten programs live in a sibling module to keep file
# sizes reviewable; the registry below merges both halves.
from repro.benchsuite.programs_tail import BENCH_PART_2  # noqa: E402

BENCHMARKS: dict[str, Benchmark] = {}
for _name, (_desc, _src) in {**BENCH_PART_1, **BENCH_PART_2}.items():
    BENCHMARKS[_name] = Benchmark(_name, _desc, _src)


def get_benchmark(name: str) -> Benchmark:
    return BENCHMARKS[name]
