"""Worklist/slice-memo stress programs (not part of the paper's 17).

Two programs whose call structure defeats whole-input call
memoization but collapses under reachable-slice keying (DESIGN.md,
"Performance architecture").  Both drive their callees from
*straight-line rounds* rather than a loop: an abstract loop fixed
point converges in two or three iterations, but ten unrolled call
sites with ten distinct router states force a whole-input memo miss
at every site — and, because the routers are globals,
``map_visible_roots`` carries them into every callee at every depth,
so the miss cascades down the entire call tree.

* ``relay`` — a binary call tree eight functions deep (128 ``bump``
  invocations per round) whose stages share one global cursor; each
  round re-points four router globals (plus four aliases) the chain
  never touches.  The chain's reachable slice (cursor and its
  targets) stabilizes after round one, so slice-keyed memoization
  answers rounds two through ten with a single ``stage7`` lookup
  each, while whole-input keying re-analyzes the tree every round.

* ``fanout`` — twelve workers with pairwise-disjoint global
  footprints, fanned out four times per round through a two-level
  sweep tree, while four shared *mix* globals churn.  Each worker's
  slice is its own two globals; the mix churn is passthrough for all
  of them.

Both execute on the concrete SIMPLE machine (terminating, no unknown
externals), so the differential soundness harness covers them too.
"""

from __future__ import annotations

from repro.benchsuite.programs import Benchmark

RELAY = r"""
/* Deep call chain over one shared cursor; routers churn around it. */
int a; int b; int c;
int *cursor;
int *r0; int *r1; int *r2; int *r3;
int *r4; int *r5; int *r6; int *r7;
int hops;

void bump(void) {
    int v;
    v = *cursor;
    if (v > 100) cursor = &a;
    else if (hops % 2 == 1) cursor = &b;
    else cursor = &c;
    hops = hops + 1;
}

/* Reads the cursor without moving it: its slice (cursor and the
 * three cells) is stable from the first stage7 round on, so every
 * later call is a slice-memo hit no matter how the routers churn. */
void ping(void) {
    int v;
    v = *cursor;
    hops = hops + 1;
}

void stage1(void) { bump(); bump(); }
void stage2(void) { stage1(); stage1(); }
void stage3(void) { stage2(); stage2(); }
void stage4(void) { stage3(); stage3(); }
void stage5(void) { stage4(); stage4(); }
void stage6(void) { stage5(); stage5(); }
void stage7(void) { stage6(); stage6(); }

int main() {
    a = 1; b = 2; c = 3;
    cursor = &a;
    hops = 0;
    r0 = &a; r1 = &b; r2 = &c; r3 = &a;
    r4 = r0; r5 = r1; r6 = r2; r7 = r3;
    stage7();
    ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping();
    ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping();
    r0 = &b; r1 = &c; r2 = &a; r3 = &c;
    r4 = r1; r5 = r2; r6 = r3; r7 = r0;
    stage7();
    ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping();
    ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping();
    r0 = &c; r1 = &a; r2 = &b; r3 = &b;
    r4 = r2; r5 = r3; r6 = r0; r7 = r1;
    stage7();
    ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping();
    ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping();
    r0 = &a; r1 = &c; r2 = &c; r3 = &b;
    r4 = r3; r5 = r0; r6 = r1; r7 = r2;
    stage7();
    ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping();
    ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping();
    r0 = &b; r1 = &a; r2 = &a; r3 = &c;
    r4 = r0; r5 = r2; r6 = r3; r7 = r1;
    stage7();
    ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping();
    ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping();
    r0 = &c; r1 = &b; r2 = &b; r3 = &a;
    r4 = r1; r5 = r3; r6 = r0; r7 = r2;
    stage7();
    ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping();
    ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping();
    r0 = &a; r1 = &a; r2 = &b; r3 = &c;
    r4 = r2; r5 = r0; r6 = r3; r7 = r1;
    stage7();
    ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping();
    ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping();
    r0 = &b; r1 = &b; r2 = &c; r3 = &a;
    r4 = r3; r5 = r1; r6 = r2; r7 = r0;
    stage7();
    ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping();
    ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping();
    r0 = &c; r1 = &c; r2 = &a; r3 = &b;
    r4 = r0; r5 = r3; r6 = r1; r7 = r2;
    stage7();
    ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping();
    ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping();
    r0 = &a; r1 = &b; r2 = &a; r3 = &b;
    r4 = r1; r5 = r0; r6 = r2; r7 = r3;
    stage7();
    ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping();
    ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping(); ping();
    /* Rounds 11-20: churn and re-dispatch without pings -- each
     * is one full-tree re-analysis for whole-input keying and a
     * single stage7 lookup for slice keying. */
    r0 = &a; r1 = &a; r2 = &a; r3 = &c;
    r4 = r0; r5 = r1; r6 = r2; r7 = r3;
    stage7();
    r0 = &a; r1 = &b; r2 = &b; r3 = &c;
    r4 = r1; r5 = r2; r6 = r3; r7 = r0;
    stage7();
    r0 = &a; r1 = &c; r2 = &c; r3 = &c;
    r4 = r2; r5 = r3; r6 = r0; r7 = r1;
    stage7();
    r0 = &b; r1 = &a; r2 = &a; r3 = &c;
    r4 = r3; r5 = r0; r6 = r1; r7 = r2;
    stage7();
    r0 = &b; r1 = &b; r2 = &b; r3 = &c;
    r4 = r0; r5 = r1; r6 = r2; r7 = r3;
    stage7();
    r0 = &b; r1 = &c; r2 = &c; r3 = &c;
    r4 = r1; r5 = r2; r6 = r3; r7 = r0;
    stage7();
    r0 = &c; r1 = &a; r2 = &a; r3 = &c;
    r4 = r2; r5 = r3; r6 = r0; r7 = r1;
    stage7();
    r0 = &c; r1 = &b; r2 = &b; r3 = &c;
    r4 = r3; r5 = r0; r6 = r1; r7 = r2;
    stage7();
    r0 = &c; r1 = &c; r2 = &c; r3 = &c;
    r4 = r0; r5 = r1; r6 = r2; r7 = r3;
    stage7();
    r0 = &a; r1 = &a; r2 = &a; r3 = &c;
    r4 = r1; r5 = r2; r6 = r3; r7 = r0;
    stage7();
    END: return hops;
}
"""

FANOUT = r"""
/* Wide fan-out: disjoint worker footprints under shared mix churn. */
int d0; int d1; int d2; int d3; int d4; int d5;
int d6; int d7; int d8; int d9; int d10; int d11;
int *w0; int *w1; int *w2; int *w3; int *w4; int *w5;
int *w6; int *w7; int *w8; int *w9; int *w10; int *w11;
int *mix0; int *mix1; int *mix2; int *mix3;
int s0; int *sp;

void work0(int n) { int i; int *p; p = &d0; for (i = 0; i < n; i = i + 1) { w0 = p; *p = i; } }
void work1(int n) { int i; int *p; p = &d1; for (i = 0; i < n; i = i + 1) { w1 = p; *p = i; } }
void work2(int n) { int i; int *p; p = &d2; for (i = 0; i < n; i = i + 1) { w2 = p; *p = i; } }
void work3(int n) { int i; int *p; p = &d3; for (i = 0; i < n; i = i + 1) { w3 = p; *p = i; } }
void work4(int n) { int i; int *p; p = &d4; for (i = 0; i < n; i = i + 1) { w4 = p; *p = i; } }
void work5(int n) { int i; int *p; p = &d5; for (i = 0; i < n; i = i + 1) { w5 = p; *p = i; } }
void work6(int n) { int i; int *p; p = &d6; for (i = 0; i < n; i = i + 1) { w6 = p; *p = i; } }
void work7(int n) { int i; int *p; p = &d7; for (i = 0; i < n; i = i + 1) { w7 = p; *p = i; } }
void work8(int n) { int i; int *p; p = &d8; for (i = 0; i < n; i = i + 1) { w8 = p; *p = i; } }
void work9(int n) { int i; int *p; p = &d9; for (i = 0; i < n; i = i + 1) { w9 = p; *p = i; } }
void work10(int n) { int i; int *p; p = &d10; for (i = 0; i < n; i = i + 1) { w10 = p; *p = i; } }
void work11(int n) { int i; int *p; p = &d11; for (i = 0; i < n; i = i + 1) { w11 = p; *p = i; } }

/* Stable two-global slice: every call after main's pre-warm is a
 * slice-memo hit while the mix globals churn around it. */
void probe(void) {
    sp = &s0;
    *sp = *sp + 1;
}

void sweep1(int n) {
    work0(n); work1(n); work2(n); work3(n);
    work4(n); work5(n); work6(n); work7(n);
    work8(n); work9(n); work10(n); work11(n);
}
void sweep2(int n) { sweep1(n); sweep1(n); }
void sweep3(int n) { sweep2(n); sweep2(n); }

int main() {
    sp = &s0;
    mix0 = &d0; mix1 = &d2; mix2 = mix0; mix3 = mix1;
    sweep3(4);
    probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe();
    probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe();
    mix0 = &d1; mix1 = &d3; mix2 = mix1; mix3 = mix0;
    sweep3(4);
    probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe();
    probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe();
    mix0 = &d2; mix1 = &d4; mix2 = mix0; mix3 = mix1;
    sweep3(4);
    probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe();
    probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe();
    mix0 = &d3; mix1 = &d5; mix2 = mix1; mix3 = mix0;
    sweep3(4);
    probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe();
    probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe();
    mix0 = &d4; mix1 = &d6; mix2 = mix0; mix3 = mix1;
    sweep3(4);
    probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe();
    probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe();
    mix0 = &d5; mix1 = &d7; mix2 = mix1; mix3 = mix0;
    sweep3(4);
    probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe();
    probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe();
    mix0 = &d6; mix1 = &d8; mix2 = mix0; mix3 = mix1;
    sweep3(4);
    probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe();
    probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe();
    mix0 = &d7; mix1 = &d9; mix2 = mix1; mix3 = mix0;
    sweep3(4);
    probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe();
    probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe();
    mix0 = &d8; mix1 = &d10; mix2 = mix0; mix3 = mix1;
    sweep3(4);
    probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe();
    probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe();
    mix0 = &d9; mix1 = &d11; mix2 = mix1; mix3 = mix0;
    sweep3(4);
    probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe();
    probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe(); probe();
    END: return 0;
}
"""

PERF_BENCHMARKS: dict[str, Benchmark] = {
    "relay": Benchmark(
        "relay", "Deep call chain under router-global churn.", RELAY
    ),
    "fanout": Benchmark(
        "fanout", "Wide worker fan-out under mix-global churn.", FANOUT
    ),
}
