"""Deterministic source-edit mutator for the edit-fuzz campaign.

Feeds the incremental-update equivalence campaign
(``tests/interp/test_edit_fuzz.py``): given a C source, propose small
*valid* edits of the kinds a developer makes between two analysis
runs — rename a local, add or remove an assignment, retarget a
function pointer, delete a function.  Every proposal is gated by a
real parse (:func:`~repro.simple.simplify.simplify_source`), so a
returned :class:`Edit` is always analyzable; mutation kinds that do
not apply to a given program (no function pointers, no deletable
function) are simply skipped.

Everything is seed-deterministic: ``propose_edits(source, seed)``
returns the same edits for the same inputs on every run, which keeps
campaign failure reports reproducible by seed number.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass

from repro.simple.patching import ChunkError, split_chunks
from repro.simple.simplify import CFrontendError, simplify_source

#: The mutation families the campaign sweeps.
EDIT_KINDS = (
    "rename_local",
    "add_assignment",
    "remove_assignment",
    "retarget_fnptr",
    "delete_function",
)


@dataclass(frozen=True)
class Edit:
    """One validated source edit."""

    kind: str  # one of EDIT_KINDS
    function: str | None  # the function the edit touches (None: global)
    description: str
    source: str  # the full edited text


# A top-of-body assignment statement: one indented line `lhs = rhs;`
# that is not a declaration (no leading type keyword) and not control
# flow.  Generated and benchmark programs both use this layout.
_ASSIGN_LINE = re.compile(
    r"^(?P<indent>[ \t]+)"
    r"(?!int\b|char\b|float\b|double\b|void\b|struct\b|union\b|"
    r"unsigned\b|long\b|short\b|return\b|if\b|while\b|for\b|else\b)"
    r"(?P<stmt>[A-Za-z_*(][^;{}]*=[^=;{}][^;{}]*;)[ \t]*$",
    re.MULTILINE,
)

# A local declaration line inside a body: `int *l0;` and friends.
_DECL_LINE = re.compile(
    r"^[ \t]+(?:int|char|float|double|struct\s+\w+|void)"
    r"(?:\s*\*+\s*|\s+)(\w+)\s*;[ \t]*$",
    re.MULTILINE,
)

# `lhs = name;` / `lhs = &name;` — candidate function-pointer stores.
_FNPTR_STORE = re.compile(
    r"(=\s*&?)([A-Za-z_]\w*)(\s*;)"
)


def _word_uses(text: str, name: str) -> int:
    return len(re.findall(rf"\b{re.escape(name)}\b", text))


def _parses(source: str) -> bool:
    try:
        simplify_source(source)
    except (CFrontendError, Exception):
        return False
    return True


def _splice(source: str, start: int, end: int, replacement: str) -> str:
    return source[:start] + replacement + source[end:]


def _rename_local(source, chunk, rng) -> tuple[str, str] | None:
    names = [m.group(1) for m in _DECL_LINE.finditer(chunk.text)]
    names = [n for n in names if _word_uses(source, n) == _word_uses(
        chunk.text, n)]  # purely local to this function
    if not names:
        return None
    name = rng.choice(names)
    fresh = name + "_rn"
    if _word_uses(source, fresh):
        return None
    body = re.sub(rf"\b{re.escape(name)}\b", fresh, chunk.text)
    return (
        _splice(source, chunk.start, chunk.end, body),
        f"rename local '{name}' -> '{fresh}' in {chunk.name}",
    )


def _add_assignment(source, chunk, rng) -> tuple[str, str] | None:
    matches = list(_ASSIGN_LINE.finditer(chunk.text))
    if not matches:
        return None
    match = rng.choice(matches)
    line = match.group(0)
    body = chunk.text[: match.end()] + "\n" + line + chunk.text[match.end():]
    return (
        _splice(source, chunk.start, chunk.end, body),
        f"duplicate assignment {match.group('stmt')!r} in {chunk.name}",
    )


def _remove_assignment(source, chunk, rng) -> tuple[str, str] | None:
    matches = list(_ASSIGN_LINE.finditer(chunk.text))
    if not matches:
        return None
    match = rng.choice(matches)
    start, end = match.start(), match.end()
    if chunk.text[end: end + 1] == "\n":
        end += 1
    body = chunk.text[:start] + chunk.text[end:]
    return (
        _splice(source, chunk.start, chunk.end, body),
        f"remove assignment {match.group('stmt')!r} in {chunk.name}",
    )


def _retarget_fnptr(source, chunk, rng, function_names) -> (
        tuple[str, str] | None):
    # Never retarget to ``main``: the invocation graph is rooted at a
    # uniquely-invoked entry point, so a fnptr call back into ``main``
    # is outside the analysis model (as is deleting it, below).
    candidates = []
    for match in _FNPTR_STORE.finditer(chunk.text):
        target = match.group(2)
        others = [n for n in function_names
                  if n != target and n != chunk.name and n != "main"]
        if target in function_names and others:
            candidates.append((match, others))
    if not candidates:
        return None
    match, others = rng.choice(candidates)
    replacement = rng.choice(sorted(others))
    body = (
        chunk.text[: match.start()]
        + match.group(1) + replacement + match.group(3)
        + chunk.text[match.end():]
    )
    return (
        _splice(source, chunk.start, chunk.end, body),
        f"retarget fnptr store {match.group(2)} -> {replacement} "
        f"in {chunk.name}",
    )


def _delete_function(source, chunks, chunk) -> tuple[str, str] | None:
    # Deletable only when nothing outside the definition references the
    # name except its own prototype lines.  Never the entry point: a
    # program without ``main`` is not analyzable.
    name = chunk.name
    if name == "main":
        return None
    proto_spans = []
    proto_re = re.compile(
        rf"^[^\n;{{}}]*\b{re.escape(name)}\s*\([^;{{)]*\)\s*;[ \t]*\n?",
        re.MULTILINE,
    )
    for other in chunks:
        if other is chunk:
            continue
        uses = _word_uses(other.text, name)
        if not uses:
            continue
        protos = list(proto_re.finditer(other.text))
        if len(protos) != uses:
            return None  # a call, address-take, or store remains
        for match in protos:
            proto_spans.append((other.start + match.start(),
                                other.start + match.end()))
    spans = sorted(proto_spans + [(chunk.start, chunk.end)], reverse=True)
    text = source
    for start, end in spans:
        text = text[:start] + text[end:]
    return text, f"delete unreferenced function {name}"


def propose_edits(
    source: str,
    seed: int,
    kinds: tuple[str, ...] = EDIT_KINDS,
    per_kind: int = 1,
) -> list[Edit]:
    """Deterministically propose up to ``per_kind`` valid edits of each
    requested kind.  Kinds that do not apply to this program are
    skipped; every returned edit re-parses successfully."""
    try:
        chunks = split_chunks(source)
    except ChunkError:
        return []
    functions = [c for c in chunks if c.kind == "function"]
    if not functions:
        return []
    function_names = {c.name for c in functions}
    edits: list[Edit] = []
    for kind in kinds:
        rng = random.Random(f"{seed}:{kind}")
        produced = 0
        for attempt in range(8 * per_kind):
            if produced >= per_kind:
                break
            chunk = rng.choice(functions)
            if kind == "rename_local":
                proposal = _rename_local(source, chunk, rng)
            elif kind == "add_assignment":
                proposal = _add_assignment(source, chunk, rng)
            elif kind == "remove_assignment":
                proposal = _remove_assignment(source, chunk, rng)
            elif kind == "retarget_fnptr":
                proposal = _retarget_fnptr(
                    source, chunk, rng, sorted(function_names)
                )
            elif kind == "delete_function":
                proposal = _delete_function(source, chunks, chunk)
            else:
                raise ValueError(f"unknown edit kind {kind!r}")
            if proposal is None:
                continue
            text, description = proposal
            if text == source or not _parses(text):
                continue
            if any(e.source == text for e in edits):
                continue
            edits.append(Edit(kind, chunk.name, description, text))
            produced += 1
    return edits
