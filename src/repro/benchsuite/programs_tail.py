"""The second half of the benchmark suite (see programs.py)."""

from __future__ import annotations

HASH = r"""
/* Chained hash table on the heap: insertion, lookup, deletion,
   resize-style rehash into a second table, iteration. */
struct entry { int key; int value; struct entry *link; };

struct entry *table[16];
struct entry *big_table[32];
int n_entries;

int hash(int key) {
    int h;
    h = (key * 31) % 16;
    if (h < 0) h = -h;
    return h;
}

int big_hash(int key) {
    int h;
    h = (key * 31) % 32;
    if (h < 0) h = -h;
    return h;
}

struct entry *lookup(int key) {
    struct entry *e;
    e = table[hash(key)];
    while (e != 0) {
        P1: if (e->key == key) return e;
        e = e->link;
    }
    return 0;
}

void insert(int key, int value) {
    struct entry *e;
    int h;
    e = lookup(key);
    if (e != 0) {
        e->value = value;
        return;
    }
    e = (struct entry *) malloc(sizeof(struct entry));
    h = hash(key);
    e->key = key;
    e->value = value;
    e->link = table[h];
    table[h] = e;
    n_entries++;
}

int remove_key(int key) {
    struct entry *e, *prev;
    int h;
    h = hash(key);
    e = table[h];
    prev = 0;
    while (e != 0) {
        if (e->key == key) {
            if (prev == 0)
                table[h] = e->link;
            else
                prev->link = e->link;
            n_entries--;
            return 1;
        }
        prev = e;
        e = e->link;
    }
    return 0;
}

void rehash(void) {
    struct entry *e, *next;
    int i, h;
    for (i = 0; i < 32; i++)
        big_table[i] = 0;
    for (i = 0; i < 16; i++) {
        e = table[i];
        while (e != 0) {
            next = e->link;
            h = big_hash(e->key);
            e->link = big_table[h];
            big_table[h] = e;
            e = next;
        }
        table[i] = 0;
    }
}

int sum_big_table(void) {
    struct entry *e;
    int i, total;
    total = 0;
    for (i = 0; i < 32; i++) {
        for (e = big_table[i]; e != 0; e = e->link)
            total += e->value;
    }
    return total;
}

int main() {
    int i, sum;
    struct entry *e;
    n_entries = 0;
    for (i = 0; i < 40; i++)
        insert(i * 7, i);
    for (i = 0; i < 10; i++)
        remove_key(i * 14);
    sum = 0;
    for (i = 0; i < 40; i++) {
        e = lookup(i * 7);
        if (e != 0) sum += e->value;
    }
    rehash();
    P2: return sum + sum_big_table() + n_entries;
}
"""


MISR = r"""
/* MISR signature simulation: shift-register chains on the heap, a
   fault-injection schedule, pairwise comparison of signatures. */
struct cell { int bit; struct cell *next; };

struct cell *registers[4];
int fault_at[8];
int n_faults;

struct cell *make_register(int n) {
    struct cell *head, *c;
    int i;
    head = 0;
    for (i = 0; i < n; i++) {
        c = (struct cell *) malloc(sizeof(struct cell));
        c->bit = 0;
        c->next = head;
        head = c;
    }
    return head;
}

void shift(struct cell *reg, int in_bit) {
    struct cell *c;
    int carry, tmp;
    carry = in_bit;
    c = reg;
    while (c != 0) {
        tmp = c->bit;
        c->bit = carry ^ (tmp & 1);
        carry = tmp;
        P1: c = c->next;
    }
}

int signature(struct cell *reg) {
    struct cell *c;
    int sig, weight;
    sig = 0;
    weight = 1;
    for (c = reg; c != 0; c = c->next) {
        sig += c->bit * weight;
        weight = weight * 2;
        if (weight > 4096) weight = 1;
    }
    return sig;
}

int compare(struct cell *a, struct cell *b) {
    while (a != 0 && b != 0) {
        if (a->bit != b->bit) return 0;
        a = a->next;
        b = b->next;
    }
    return a == 0 && b == 0;
}

void inject(struct cell *reg, int position) {
    struct cell *c;
    int i;
    c = reg;
    for (i = 0; i < position && c != 0; i++)
        c = c->next;
    if (c != 0)
        c->bit = 1 - c->bit;
}

void drive(struct cell *reg, int rounds, int with_faults) {
    int i, f;
    f = 0;
    for (i = 0; i < rounds; i++) {
        shift(reg, i & 1);
        if (with_faults && f < n_faults && fault_at[f] == i) {
            inject(reg, i % 16);
            f++;
        }
    }
}

int main() {
    int i, same_count, sig_total;
    n_faults = 3;
    fault_at[0] = 5;
    fault_at[1] = 17;
    fault_at[2] = 40;
    for (i = 0; i < 4; i++)
        registers[i] = make_register(16);
    drive(registers[0], 64, 0);
    drive(registers[1], 64, 0);
    drive(registers[2], 64, 1);
    drive(registers[3], 64, 1);
    same_count = 0;
    same_count += compare(registers[0], registers[1]);
    same_count += compare(registers[0], registers[2]);
    same_count += compare(registers[2], registers[3]);
    sig_total = 0;
    for (i = 0; i < 4; i++)
        sig_total += signature(registers[i]);
    P2: return same_count * 10000 + (sig_total % 10000);
}
"""


XREF = r"""
/* Cross-reference: a binary search tree of items on the heap with
   per-item occurrence lists, traversal, depth statistics, and
   selective pruning. */
struct occurrence { int line; struct occurrence *next; };
struct item {
    char name[16];
    int n_occurrences;
    struct occurrence *occurrences;
    struct item *left, *right;
};

struct item *tree_root;
int total_occurrences;

int name_cmp(char *a, char *b) {
    while (*a != 0 && *a == *b) { a++; b++; }
    return *a - *b;
}

void name_copy(char *dst, char *src) {
    while ((*dst++ = *src++) != 0)
        ;
}

struct occurrence *new_occurrence(int line, struct occurrence *next) {
    struct occurrence *occ;
    occ = (struct occurrence *) malloc(sizeof(struct occurrence));
    occ->line = line;
    occ->next = next;
    total_occurrences++;
    return occ;
}

struct item *insert_item(struct item *node, char *name, int line) {
    int c;
    if (node == 0) {
        node = (struct item *) malloc(sizeof(struct item));
        name_copy(node->name, name);
        node->left = 0;
        node->right = 0;
        node->n_occurrences = 1;
        node->occurrences = new_occurrence(line, 0);
        return node;
    }
    c = name_cmp(name, node->name);
    if (c < 0)
        node->left = insert_item(node->left, name, line);
    else if (c > 0)
        node->right = insert_item(node->right, name, line);
    else {
        node->occurrences = new_occurrence(line, node->occurrences);
        node->n_occurrences++;
        P1: ;
    }
    return node;
}

struct item *find_item(struct item *node, char *name) {
    int c;
    while (node != 0) {
        c = name_cmp(name, node->name);
        if (c == 0) return node;
        if (c < 0) node = node->left;
        else node = node->right;
    }
    return 0;
}

int count_items(struct item *node) {
    if (node == 0) return 0;
    return 1 + count_items(node->left) + count_items(node->right);
}

int tree_depth(struct item *node) {
    int ld, rd;
    if (node == 0) return 0;
    ld = tree_depth(node->left);
    rd = tree_depth(node->right);
    if (ld > rd) return ld + 1;
    return rd + 1;
}

int count_lines(struct item *node) {
    struct occurrence *occ;
    int lines;
    if (node == 0) return 0;
    lines = 0;
    for (occ = node->occurrences; occ != 0; occ = occ->next)
        lines += occ->line;
    return lines + count_lines(node->left) + count_lines(node->right);
}

struct item *prune_rare(struct item *node, int min_count) {
    if (node == 0) return 0;
    node->left = prune_rare(node->left, min_count);
    node->right = prune_rare(node->right, min_count);
    if (node->n_occurrences < min_count) {
        /* splice out: re-insert the right subtree into the left */
        if (node->left == 0) return node->right;
        if (node->right == 0) return node->left;
        /* keep the node if both children exist (simple heuristic) */
    }
    return node;
}

int main() {
    char word[16];
    struct item *found;
    int i, hits;
    total_occurrences = 0;
    word[0] = 'a';
    word[2] = 0;
    for (i = 0; i < 52; i++) {
        word[1] = (char) ('a' + (i * 7) % 26);
        tree_root = insert_item(tree_root, word, i + 1);
    }
    hits = 0;
    for (i = 0; i < 26; i++) {
        word[1] = (char) ('a' + i);
        found = find_item(tree_root, word);
        if (found != 0)
            hits += found->n_occurrences;
    }
    tree_root = prune_rare(tree_root, 2);
    P2: return count_items(tree_root) * 1000 + tree_depth(tree_root) * 100
        + (count_lines(tree_root) % 100) + hits;
}
"""


STANFORD = r"""
/* Stanford baby benchmark medley: perm, towers, queens, bubble,
   intmm, quicksort over pointer-passed arrays. */
int perm_count;
int tower_moves;
int sortlist[32];
int mm_a[8][8];
int mm_b[8][8];
int mm_c[8][8];

void swap_ints(int *x, int *y) {
    int t;
    t = *x;
    *x = *y;
    P1: *y = t;
}

void permute(int *arr, int n) {
    int i;
    perm_count++;
    if (n <= 1) return;
    for (i = 0; i < n; i++) {
        swap_ints(&arr[i], &arr[n - 1]);
        permute(arr, n - 1);
        swap_ints(&arr[i], &arr[n - 1]);
    }
}

void towers(int n, int from, int to, int via) {
    if (n == 1) {
        tower_moves++;
        return;
    }
    towers(n - 1, from, via, to);
    tower_moves++;
    towers(n - 1, via, to, from);
}

int queens_try(int col, int *rows, int n) {
    int row, ok, i, found;
    if (col == n) return 1;
    found = 0;
    for (row = 0; row < n && !found; row++) {
        ok = 1;
        for (i = 0; i < col; i++) {
            if (rows[i] == row) ok = 0;
            if (rows[i] - i == row - col) ok = 0;
            if (rows[i] + i == row + col) ok = 0;
        }
        if (ok) {
            rows[col] = row;
            found = queens_try(col + 1, rows, n);
        }
    }
    return found;
}

void bubble(int *list, int n) {
    int i, j;
    for (i = 0; i < n - 1; i++)
        for (j = 0; j < n - 1 - i; j++)
            if (list[j] > list[j + 1])
                swap_ints(&list[j], &list[j + 1]);
}

void quicksort(int *list, int lo, int hi) {
    int pivot, i, j;
    if (lo >= hi) return;
    pivot = list[(lo + hi) / 2];
    i = lo;
    j = hi;
    while (i <= j) {
        while (list[i] < pivot) i++;
        while (list[j] > pivot) j--;
        if (i <= j) {
            swap_ints(&list[i], &list[j]);
            i++;
            j--;
        }
    }
    quicksort(list, lo, j);
    quicksort(list, i, hi);
}

void init_matrix(int (*m)[8], int base) {
    int i, j;
    for (i = 0; i < 8; i++)
        for (j = 0; j < 8; j++)
            m[i][j] = (i + j + base) % 7 - 3;
}

void inner_product(int *result, int (*a)[8], int (*b)[8], int row, int col) {
    int i;
    *result = 0;
    for (i = 0; i < 8; i++)
        *result = *result + a[row][i] * b[i][col];
}

void intmm(void) {
    int i, j;
    init_matrix(mm_a, 1);
    init_matrix(mm_b, 2);
    for (i = 0; i < 8; i++)
        for (j = 0; j < 8; j++)
            inner_product(&mm_c[i][j], mm_a, mm_b, i, j);
}

int checksum_matrix(int (*m)[8]) {
    int i, j, s;
    s = 0;
    for (i = 0; i < 8; i++)
        for (j = 0; j < 8; j++)
            s += m[i][j];
    return s;
}

int main() {
    int small[4];
    int rows[8];
    int qlist[16];
    int i, result;
    for (i = 0; i < 4; i++) small[i] = 4 - i;
    for (i = 0; i < 32; i++) sortlist[i] = (i * 13) % 32;
    for (i = 0; i < 16; i++) qlist[i] = (i * 11) % 16;
    perm_count = 0;
    tower_moves = 0;
    permute(small, 4);
    towers(6, 0, 2, 1);
    result = queens_try(0, rows, 8);
    bubble(sortlist, 32);
    quicksort(qlist, 0, 15);
    intmm();
    P2: return perm_count + tower_moves + result + sortlist[0]
        + qlist[15] + checksum_matrix(mm_c);
}
"""


FIXOUTPUT = r"""
/* Simple translator: scans an input buffer, classifies tokens by a
   table of predicates, rewrites them into an output buffer through
   roving pointers. */
char input[128];
char output[256];
char token[32];
int class_counts[4];

char *skip_blanks(char *p) {
    while (*p == ' ')
        p++;
    return p;
}

char *copy_token(char *dst, char *src) {
    while (*src != 0 && *src != ' ') {
        *dst = *src;
        dst++;
        src++;
        P1: ;
    }
    *dst = 0;
    return src;
}

int token_length(char *t) {
    int n;
    n = 0;
    while (*t != 0) { n++; t++; }
    return n;
}

int is_numeric(char *t) {
    while (*t != 0) {
        if (*t < '0' || *t > '9') return 0;
        t++;
    }
    return 1;
}

int is_short(char *t) { return token_length(t) <= 2; }

int is_upper(char *t) {
    while (*t != 0) {
        if (*t < 'A' || *t > 'Z') return 0;
        t++;
    }
    return 1;
}

int classify(char *t) {
    int (*tests[3])(char *);
    int i;
    tests[0] = is_numeric;
    tests[1] = is_upper;
    tests[2] = is_short;
    for (i = 0; i < 3; i++) {
        if (tests[i](t))
            return i;
    }
    return 3;
}

char *emit(char *out, char *t, int cls) {
    char prefix;
    prefix = (char) ('0' + cls);
    *out = prefix;
    out++;
    while (*t != 0) {
        *out = *t;
        out++;
        t++;
    }
    *out = ' ';
    out++;
    return out;
}

int translate(void) {
    char *in, *out;
    int count, cls;
    in = input;
    out = output;
    count = 0;
    while (*in != 0) {
        in = skip_blanks(in);
        if (*in == 0) break;
        in = copy_token(token, in);
        cls = classify(token);
        class_counts[cls]++;
        out = emit(out, token, cls);
        count++;
    }
    *out = 0;
    P2: return count;
}

int main() {
    int i, n;
    for (i = 0; i < 120; i++)
        input[i] = (char) ((i % 5 == 0) ? ' ' : ('a' + i % 26));
    input[120] = 0;
    for (i = 0; i < 4; i++)
        class_counts[i] = 0;
    n = translate();
    return n + class_counts[0] + class_counts[3] * 10;
}
"""


SIM = r"""
/* Local similarity with affine weights: DP matrices on the heap,
   rows addressed through pointer arrays, traceback through saved
   direction rows. */
int *dp_rows[34];
int *gap_rows[34];
int *dir_rows[34];
char seq_a[34];
char seq_b[34];
int best_i, best_j;

int *alloc_row(int n) {
    int *row;
    int i;
    row = (int *) malloc(n * sizeof(int));
    for (i = 0; i < n; i++)
        row[i] = 0;
    return row;
}

int match_score(char x, char y) {
    if (x == y) return 2;
    return -1;
}

int max3(int a, int b, int c) {
    int m;
    m = a;
    if (b > m) m = b;
    if (c > m) m = c;
    return m;
}

void alloc_all(int n, int m) {
    int i;
    for (i = 0; i < n; i++) {
        dp_rows[i] = alloc_row(m);
        gap_rows[i] = alloc_row(m);
        dir_rows[i] = alloc_row(m);
    }
}

int similarity(int n, int m) {
    int i, j, best, diag, open_gap, extend_gap;
    int *row, *prev, *grow, *drow;
    best = 0;
    best_i = 0;
    best_j = 0;
    for (i = 1; i < n; i++) {
        row = dp_rows[i];
        prev = dp_rows[i - 1];
        grow = gap_rows[i];
        drow = dir_rows[i];
        for (j = 1; j < m; j++) {
            open_gap = prev[j] - 4;
            extend_gap = grow[j - 1] - 1;
            grow[j] = max3(extend_gap, open_gap, 0);
            diag = prev[j - 1] + match_score(seq_a[i], seq_b[j]);
            row[j] = max3(diag, grow[j], 0);
            if (row[j] == diag) drow[j] = 1;
            else if (row[j] == grow[j]) drow[j] = 2;
            else drow[j] = 0;
            P1: if (row[j] > best) {
                best = row[j];
                best_i = i;
                best_j = j;
            }
        }
    }
    return best;
}

int traceback_length(void) {
    int i, j, steps;
    int *drow;
    i = best_i;
    j = best_j;
    steps = 0;
    while (i > 0 && j > 0 && steps < 100) {
        drow = dir_rows[i];
        if (drow[j] == 0) break;
        if (drow[j] == 1) { i--; j--; }
        else { j--; }
        steps++;
    }
    return steps;
}

int main() {
    int i, score;
    for (i = 0; i < 33; i++) {
        seq_a[i] = (char) ('a' + (i * 3) % 4);
        seq_b[i] = (char) ('a' + (i * 5) % 4);
    }
    seq_a[33] = 0;
    seq_b[33] = 0;
    alloc_all(34, 34);
    score = similarity(34, 34);
    P2: return score * 100 + traceback_length();
}
"""


TRAVEL = r"""
/* Travelling salesman with greedy heuristics: city table, tours as
   index arrays, nearest-neighbour, 2-opt and or-opt moves through
   pointer parameters, tour bookkeeping utilities. */
struct city { int x, y; int visited; };

struct city cities[20];
int tour[21];
int best_tour[21];
int saved_segment[21];

int dist(struct city *a, struct city *b) {
    int dx, dy;
    dx = a->x - b->x;
    dy = a->y - b->y;
    P1: return dx * dx + dy * dy;
}

int nearest(struct city *from) {
    int i, best, bestd, d;
    best = -1;
    bestd = 1 << 30;
    for (i = 0; i < 14; i++) {
        if (cities[i].visited) continue;
        d = dist(from, &cities[i]);
        if (d < bestd) {
            bestd = d;
            best = i;
        }
    }
    return best;
}

int tour_length(int *t, int n) {
    int i, total;
    total = 0;
    for (i = 0; i < n - 1; i++)
        total += dist(&cities[t[i]], &cities[t[i + 1]]);
    return total;
}

void copy_tour(int *dst, int *src, int n) {
    int i;
    for (i = 0; i < n; i++)
        dst[i] = src[i];
}

void reverse_segment(int *t, int i, int j) {
    int tmp;
    while (i < j) {
        tmp = t[i];
        t[i] = t[j];
        t[j] = tmp;
        i++;
        j--;
    }
}

void greedy(void) {
    int step, current;
    current = 0;
    cities[0].visited = 1;
    tour[0] = 0;
    for (step = 1; step < 14; step++) {
        current = nearest(&cities[tour[step - 1]]);
        cities[current].visited = 1;
        tour[step] = current;
    }
    tour[14] = 0;
}

int two_opt(void) {
    int i, j, before, after, improved;
    improved = 0;
    for (i = 1; i < 13; i++) {
        for (j = i + 1; j < 14; j++) {
            before = tour_length(tour, 15);
            reverse_segment(tour, i, j);
            after = tour_length(tour, 15);
            if (after >= before)
                reverse_segment(tour, i, j);
            else
                improved++;
        }
    }
    return improved;
}

int or_opt(void) {
    int i, j, k, before, after, improved, city_moved;
    improved = 0;
    for (i = 1; i < 13; i++) {
        before = tour_length(tour, 15);
        city_moved = tour[i];
        /* remove city i and reinsert after position j */
        for (j = 1; j < 13; j++) {
            if (j == i) continue;
            copy_tour(saved_segment, tour, 15);
            for (k = i; k < 14; k++)
                tour[k] = tour[k + 1];
            for (k = 13; k > j; k--)
                tour[k] = tour[k - 1];
            tour[j] = city_moved;
            tour[14] = tour[0];
            after = tour_length(tour, 15);
            if (after < before) {
                improved++;
                before = after;
            } else {
                copy_tour(tour, saved_segment, 15);
            }
        }
    }
    return improved;
}

int main() {
    int i, improvements;
    for (i = 0; i < 14; i++) {
        cities[i].x = (i * 37) % 100;
        cities[i].y = (i * 61) % 100;
        cities[i].visited = 0;
    }
    greedy();
    improvements = two_opt();
    improvements += or_opt();
    copy_tour(best_tour, tour, 15);
    P2: return tour_length(best_tour, 15) + improvements;
}
"""


CSUITE = r"""
/* Vectorizer test suite style: many small kernels called once from
   main, each taking array/pointer parameters. */
int data_a[64];
int data_b[64];
int data_c[64];
int histogram[16];

int kernel_copy(int *a, int *b, int n) {
    int i;
    for (i = 0; i < n; i++) a[i] = b[i];
    return n;
}
int kernel_add(int *a, int *b, int *c, int n) {
    int i;
    for (i = 0; i < n; i++) c[i] = a[i] + b[i];
    return n;
}
int kernel_scale(int *a, int s, int n) {
    int i;
    for (i = 0; i < n; i++) a[i] = a[i] * s;
    return n;
}
int kernel_reduce(int *a, int n) {
    int i, s;
    s = 0;
    for (i = 0; i < n; i++) s += a[i];
    P1: return s;
}
int kernel_reverse(int *a, int n) {
    int i, t;
    for (i = 0; i < n / 2; i++) {
        t = a[i];
        a[i] = a[n - 1 - i];
        a[n - 1 - i] = t;
    }
    return n;
}
int kernel_stride(int *a, int *b, int n) {
    int i;
    for (i = 0; i < n; i += 2) a[i] = b[i / 2];
    return n;
}
int kernel_gather(int *a, int *b, int *idx, int n) {
    int i;
    for (i = 0; i < n; i++) a[i] = b[idx[i] % n];
    return n;
}
int kernel_scatter(int *a, int *b, int *idx, int n) {
    int i;
    for (i = 0; i < n; i++) a[idx[i] % n] = b[i];
    return n;
}
int kernel_max(int *a, int n) {
    int i, m;
    m = a[0];
    for (i = 1; i < n; i++)
        if (a[i] > m) m = a[i];
    return m;
}
int kernel_shift(int *a, int n) {
    int i;
    for (i = 0; i < n - 1; i++) a[i] = a[i + 1];
    return n;
}
int kernel_mask(int *a, int *b, int n) {
    int i;
    for (i = 0; i < n; i++)
        if (b[i] > 0) a[i] = b[i];
    return n;
}
int kernel_histogram(int *a, int *h, int n, int buckets) {
    int i, slot;
    for (i = 0; i < buckets; i++) h[i] = 0;
    for (i = 0; i < n; i++) {
        slot = a[i] % buckets;
        if (slot < 0) slot = -slot;
        h[slot]++;
    }
    return buckets;
}
int kernel_stencil(int *a, int *b, int n) {
    int i;
    for (i = 1; i < n - 1; i++)
        a[i] = (b[i - 1] + b[i] + b[i + 1]) / 3;
    return n;
}
int kernel_prefix_sum(int *a, int n) {
    int i;
    for (i = 1; i < n; i++)
        a[i] = a[i] + a[i - 1];
    return a[n - 1];
}
int kernel_compact(int *a, int *b, int n) {
    int i, out;
    out = 0;
    for (i = 0; i < n; i++) {
        if (b[i] % 2 == 0) {
            a[out] = b[i];
            out++;
        }
    }
    return out;
}

int main() {
    int i, checksum;
    int indices[64];
    for (i = 0; i < 64; i++) {
        data_a[i] = i;
        data_b[i] = 64 - i;
        indices[i] = (i * 7) % 64;
    }
    checksum = 0;
    checksum += kernel_copy(data_c, data_a, 64);
    checksum += kernel_add(data_a, data_b, data_c, 64);
    checksum += kernel_scale(data_c, 3, 64);
    checksum += kernel_reduce(data_c, 64);
    checksum += kernel_reverse(data_c, 64);
    checksum += kernel_stride(data_a, data_b, 64);
    checksum += kernel_gather(data_c, data_a, indices, 64);
    checksum += kernel_scatter(data_a, data_c, indices, 64);
    checksum += kernel_max(data_c, 64);
    checksum += kernel_shift(data_b, 64);
    checksum += kernel_mask(data_a, data_b, 64);
    checksum += kernel_histogram(data_a, histogram, 64, 16);
    checksum += kernel_stencil(data_c, data_a, 64);
    checksum += kernel_prefix_sum(data_b, 64);
    checksum += kernel_compact(data_c, data_b, 64);
    P2: return checksum;
}
"""


MSC = r"""
/* Minimum spanning circle of points in the plane; candidate circles
   built on the heap from two- and three-point supports, the point
   set scanned through pointers. */
struct point { double x, y; };
struct circle { struct point center; double r2; };

struct point points[12];
struct circle *candidates[80];
int n_candidates;

double dist2(struct point *a, struct point *b) {
    double dx, dy;
    dx = a->x - b->x;
    dy = a->y - b->y;
    return dx * dx + dy * dy;
}

struct circle *circle_from_two(struct point *a, struct point *b) {
    struct circle *c;
    c = (struct circle *) malloc(sizeof(struct circle));
    c->center.x = (a->x + b->x) / 2.0;
    c->center.y = (a->y + b->y) / 2.0;
    c->r2 = dist2(a, b) / 4.0;
    P1: return c;
}

struct circle *circle_from_three(struct point *a, struct point *b,
                                 struct point *c3) {
    struct circle *c;
    double ax, ay, bx, by, cx, cy, d, ux, uy;
    c = (struct circle *) malloc(sizeof(struct circle));
    ax = a->x; ay = a->y;
    bx = b->x; by = b->y;
    cx = c3->x; cy = c3->y;
    d = 2.0 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by));
    if (d < 0.000001 && d > -0.000001) {
        c->center.x = (ax + bx + cx) / 3.0;
        c->center.y = (ay + by + cy) / 3.0;
        c->r2 = 1000000.0;
        return c;
    }
    ux = ((ax * ax + ay * ay) * (by - cy)
          + (bx * bx + by * by) * (cy - ay)
          + (cx * cx + cy * cy) * (ay - by)) / d;
    uy = ((ax * ax + ay * ay) * (cx - bx)
          + (bx * bx + by * by) * (ax - cx)
          + (cx * cx + cy * cy) * (bx - ax)) / d;
    c->center.x = ux;
    c->center.y = uy;
    c->r2 = dist2(&c->center, a);
    return c;
}

int contains_all(struct circle *c, int n) {
    int i;
    for (i = 0; i < n; i++) {
        if (dist2(&c->center, &points[i]) > c->r2 + 0.0001)
            return 0;
    }
    return 1;
}

void collect_candidates(int n) {
    int i, j, k;
    n_candidates = 0;
    for (i = 0; i < n; i++) {
        for (j = i + 1; j < n; j++) {
            if (n_candidates < 80) {
                candidates[n_candidates] =
                    circle_from_two(&points[i], &points[j]);
                n_candidates++;
            }
            for (k = j + 1; k < n && n_candidates < 80; k += 5) {
                candidates[n_candidates] =
                    circle_from_three(&points[i], &points[j], &points[k]);
                n_candidates++;
            }
        }
    }
}

struct circle *smallest_valid(int n) {
    struct circle *best, *cand;
    int i;
    best = 0;
    for (i = 0; i < n_candidates; i++) {
        cand = candidates[i];
        if (contains_all(cand, n)) {
            if (best == 0 || cand->r2 < best->r2)
                best = cand;
        }
    }
    P2: return best;
}

int main() {
    int i;
    struct circle *best;
    for (i = 0; i < 12; i++) {
        points[i].x = (double) ((i * 13) % 10);
        points[i].y = (double) ((i * 29) % 10);
    }
    collect_candidates(12);
    best = smallest_valid(12);
    if (best == 0) return -1;
    return (int) best->r2 + n_candidates;
}
"""


LWS = r"""
/* Flexible water molecule dynamics: large state vectors passed by
   pointer through a deep call chain; neighbor lists, constraint
   projection, kinetic/potential bookkeeping — many formal-parameter-
   induced relationships, as in the paper's largest benchmark. */
double positions[81];
double velocities[81];
double forces[81];
double masses[27];
int neighbor_list[27][8];
int neighbor_count[27];
double potential_energy;

void zero_vector(double *v, int n) {
    int i;
    for (i = 0; i < n; i++) v[i] = 0.0;
}

void copy_vector(double *dst, double *src, int n) {
    int i;
    for (i = 0; i < n; i++) dst[i] = src[i];
}

double atom_dist2(double *pos, int i, int j) {
    double dx, dy, dz;
    dx = pos[3 * i] - pos[3 * j];
    dy = pos[3 * i + 1] - pos[3 * j + 1];
    dz = pos[3 * i + 2] - pos[3 * j + 2];
    return dx * dx + dy * dy + dz * dz;
}

void build_neighbors(double *pos, double cutoff2) {
    int a, b;
    for (a = 0; a < 27; a++)
        neighbor_count[a] = 0;
    for (a = 0; a < 27; a++) {
        for (b = a + 1; b < 27; b++) {
            if (a / 3 == b / 3) continue;
            if (atom_dist2(pos, a, b) < cutoff2) {
                if (neighbor_count[a] < 8) {
                    neighbor_list[a][neighbor_count[a]] = b;
                    neighbor_count[a]++;
                }
            }
        }
    }
}

void pair_force(double *pos, double *frc, int i, int j) {
    double dx, dy, dz, r2, f;
    dx = pos[3 * i] - pos[3 * j];
    dy = pos[3 * i + 1] - pos[3 * j + 1];
    dz = pos[3 * i + 2] - pos[3 * j + 2];
    r2 = dx * dx + dy * dy + dz * dz + 0.01;
    f = 1.0 / r2;
    potential_energy += f;
    frc[3 * i] += f * dx;
    frc[3 * i + 1] += f * dy;
    frc[3 * i + 2] += f * dz;
    frc[3 * j] -= f * dx;
    frc[3 * j + 1] -= f * dy;
    P1: frc[3 * j + 2] -= f * dz;
}

void intra_forces(double *pos, double *frc) {
    int m;
    for (m = 0; m < 9; m++) {
        pair_force(pos, frc, 3 * m, 3 * m + 1);
        pair_force(pos, frc, 3 * m, 3 * m + 2);
        pair_force(pos, frc, 3 * m + 1, 3 * m + 2);
    }
}

void inter_forces(double *pos, double *frc) {
    int a, k;
    for (a = 0; a < 27; a++)
        for (k = 0; k < neighbor_count[a]; k++)
            pair_force(pos, frc, a, neighbor_list[a][k]);
}

void integrate(double *pos, double *vel, double *frc, double *mass,
               double dt, int n) {
    int i;
    for (i = 0; i < n; i++) {
        vel[i] += dt * frc[i] / mass[i / 3];
        pos[i] += dt * vel[i];
    }
}

void constrain_bonds(double *pos, int n_molecules) {
    /* crude SHAKE-style projection: pull each H back toward its O */
    int m, h;
    double scale;
    scale = 0.99;
    for (m = 0; m < n_molecules; m++) {
        for (h = 1; h <= 2; h++) {
            pos[3 * (3 * m + h)] =
                pos[3 * (3 * m)] +
                scale * (pos[3 * (3 * m + h)] - pos[3 * (3 * m)]);
        }
    }
}

double kinetic_energy(double *vel, double *mass, int n) {
    double e;
    int i;
    e = 0.0;
    for (i = 0; i < n; i++)
        e += 0.5 * mass[i / 3] * vel[i] * vel[i];
    return e;
}

double temperature(double *vel, double *mass, int n) {
    return kinetic_energy(vel, mass, n) / (1.5 * (double) n);
}

void step(double *pos, double *vel, double *frc, double *mass, double dt) {
    zero_vector(frc, 81);
    potential_energy = 0.0;
    intra_forces(pos, frc);
    inter_forces(pos, frc);
    integrate(pos, vel, frc, mass, dt, 81);
    constrain_bonds(pos, 9);
}

int main() {
    int i, s;
    double energy, temp;
    for (i = 0; i < 81; i++) {
        positions[i] = (double) (i % 9);
        velocities[i] = 0.0;
    }
    for (i = 0; i < 27; i++)
        masses[i] = 1.0 + (double) (i % 3);
    build_neighbors(positions, 9.0);
    for (s = 0; s < 8; s++) {
        step(positions, velocities, forces, masses, 0.001);
        if (s == 4)
            build_neighbors(positions, 9.0);
    }
    energy = kinetic_energy(velocities, masses, 81);
    temp = temperature(velocities, masses, 81);
    P2: return (int) (energy + temp * 100.0);
}
"""


BENCH_PART_2 = {
    "hash": ("Chained hash table.", HASH),
    "misr": ("MISR signature comparison.", MISR),
    "xref": ("Cross-reference tree builder.", XREF),
    "stanford": ("Stanford baby benchmarks.", STANFORD),
    "fixoutput": ("A simple translator.", FIXOUTPUT),
    "sim": ("Local similarity with affine weights.", SIM),
    "travel": ("Travelling salesman heuristics.", TRAVEL),
    "csuite": ("Vectorizing-compiler test suite.", CSUITE),
    "msc": ("Minimum spanning circle.", MSC),
    "lws": ("Flexible water molecule dynamics.", LWS),
}
