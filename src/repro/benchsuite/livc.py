"""The `livc` function-pointer study workload (Section 6).

The paper's `livc` is a collection of livermore loops with **three
global arrays of function pointers, each initialized to a set of 24
functions**, and **three indirect call-sites** (each inside a loop),
one per array, each calling through a scalar local function pointer
assigned from the array.  The program has **82 functions in total**,
of which 72 have their address taken.

This module generates a program with exactly that structure:
82 functions; 3 tables x 24 entries (the 72 address-taken functions);
3 looped indirect call-sites through scalar locals; and the remaining
functions called directly (or not at all) so the address-taken and
all-functions baselines diverge the same way the paper reports.
"""

from __future__ import annotations

TABLES = 3
ENTRIES = 24
TOTAL_FUNCTIONS = 82


def livc_source() -> str:
    """Generate the livc-equivalent benchmark source."""
    parts: list[str] = [
        "/* livc: livermore-loop-style function pointer tables. */",
        "double data[100];",
        "double out[100];",
        # every kernel verifies its output through this shared helper,
        # giving each kernel node a sub-tree (as the real livermore
        # loops' checksum code did) — the naive binding strategies then
        # replicate the whole sub-tree per candidate callee.
        "double check_sum(double *v, int n) {\n"
        "    double s;\n"
        "    int i;\n"
        "    s = 0.0;\n"
        "    for (i = 0; i < n; i++)\n"
        "        s += v[i];\n"
        "    return s;\n"
        "}",
    ]

    # 72 kernel functions, address-taken via the three tables.
    kernel_names: list[str] = []
    for table in range(TABLES):
        for entry in range(ENTRIES):
            name = f"loop{table}_{entry}"
            kernel_names.append(name)
            parts.append(
                f"int {name}(void) {{\n"
                f"    int i;\n"
                f"    double check;\n"
                f"    for (i = 0; i < 100; i++)\n"
                f"        out[i] = data[i] * {entry + 1}.0 + {table}.0;\n"
                f"    check = check_sum(out, 100);\n"
                f"    return i + (check > 0.0);\n"
                f"}}"
            )

    # Direct-call helpers (with check_sum and main: 82 functions total).
    helper_names = [
        f"helper{i}"
        for i in range(TOTAL_FUNCTIONS - TABLES * ENTRIES - 2)
    ]
    for index, name in enumerate(helper_names):
        parts.append(
            f"int {name}(double *v, int n) {{\n"
            f"    int i;\n"
            f"    double s;\n"
            f"    s = 0.0;\n"
            f"    for (i = 0; i < n; i++)\n"
            f"        s += v[i] * {index + 1}.0;\n"
            f"    return (int) s;\n"
            f"}}"
        )

    # The three global function-pointer tables.
    for table in range(TABLES):
        names = ", ".join(f"loop{table}_{e}" for e in range(ENTRIES))
        parts.append(
            f"int (*table{table}[{ENTRIES}])(void) = {{ {names} }};"
        )

    # main: one looped indirect call-site per table, each through a
    # scalar local function pointer, plus direct helper calls.
    body = [
        "int main() {",
        "    int i, checksum;",
        "    int (*fn)(void);",
        "    checksum = 0;",
        "    for (i = 0; i < 100; i++)",
        "        data[i] = (double) i;",
    ]
    for table in range(TABLES):
        body.extend(
            [
                f"    for (i = 0; i < {ENTRIES}; i++) {{",
                f"        fn = table{table}[i];",
                f"        SITE{table}: checksum += fn();",
                "    }",
            ]
        )
    for name in helper_names:
        body.append(f"    checksum += {name}(out, 100);")
    body.extend(["    return checksum;", "}"])
    parts.append("\n".join(body))
    return "\n\n".join(parts) + "\n"
