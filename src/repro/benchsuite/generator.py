"""Random pointer-program generator for stress and property testing.

Generates well-formed programs in the supported C subset with a
controllable mix of pointer idioms: address-taking, multi-level
pointers, pointer parameters (including by-reference outs), heap
allocation, struct chains, function pointers, and recursion.  Used by
the hypothesis-based property tests (analysis terminates, the result
is safe with respect to NULL-source/definite-uniqueness invariants)
and by the scalability bench.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass
class GeneratorConfig:
    n_functions: int = 4
    n_globals: int = 3
    n_locals: int = 4
    n_stmts: int = 8
    use_function_pointers: bool = True
    use_heap: bool = True
    use_structs: bool = True
    use_recursion: bool = True
    max_pointer_level: int = 2


def generate_program(seed: int, config: GeneratorConfig | None = None) -> str:
    """Generate a deterministic random program for ``seed``."""
    cfg = config or GeneratorConfig()
    rng = random.Random(seed)
    parts: list[str] = []

    if cfg.use_structs:
        parts.append("struct node { int data; struct node *next; int *ptr; };")

    globals_: list[tuple[str, int]] = []  # (name, pointer level)
    for i in range(cfg.n_globals):
        level = rng.randint(0, cfg.max_pointer_level)
        globals_.append((f"g{i}", level))
        parts.append(f"int {'*' * level}g{i};")
    if cfg.use_structs:
        parts.append("struct node *gnode;")

    fn_names = [f"f{i}" for i in range(cfg.n_functions)]

    def var_pool(local_names):
        pool = [(name, level) for name, level in globals_]
        pool.extend(local_names)
        return pool

    def pick_ptr(pool, rng, min_level=1):
        candidates = [(n, l) for n, l in pool if l >= min_level]
        if not candidates:
            return None
        return rng.choice(candidates)

    def gen_stmts(pool, rng, depth, callees, n):
        stmts = []
        for _ in range(n):
            kind = rng.randint(0, 9)
            if kind <= 2:  # address-of assignment
                dst = pick_ptr(pool, rng)
                src = pick_ptr(pool, rng, min_level=0)
                if dst and src and src[1] == dst[1] - 1:
                    stmts.append(f"{dst[0]} = &{src[0]};")
            elif kind == 3:  # copy
                dst = pick_ptr(pool, rng)
                src = pick_ptr(pool, rng)
                if dst and src and dst[1] == src[1]:
                    stmts.append(f"{dst[0]} = {src[0]};")
            elif kind == 4:  # store through pointer
                dst = pick_ptr(pool, rng)
                src = pick_ptr(pool, rng, min_level=0)
                if dst and src and src[1] == dst[1] - 1 and dst[1] >= 1:
                    stmts.append(f"*{dst[0]} = {src[0]};")
            elif kind == 5:  # load through pointer
                src = pick_ptr(pool, rng)
                dst = pick_ptr(pool, rng, min_level=0)
                if dst and src and dst[1] == src[1] - 1:
                    stmts.append(f"{dst[0]} = *{src[0]};")
            elif kind == 6 and callees:  # call
                callee = rng.choice(callees)
                arg = pick_ptr(pool, rng)
                if arg:
                    stmts.append(f"{callee}({arg[0]});")
            elif kind == 7 and depth < 2:  # conditional
                inner = gen_stmts(pool, rng, depth + 1, callees, 2)
                if inner:
                    body = " ".join(inner)
                    stmts.append(f"if (g0 != 0) {{ {body} }}")
            elif kind == 8 and depth < 2:  # loop
                inner = gen_stmts(pool, rng, depth + 1, callees, 2)
                if inner:
                    body = " ".join(inner)
                    stmts.append(
                        f"while (g0 != 0) {{ {body} g0 = 0; }}"
                    )
            elif kind == 9:  # NULL assignment
                dst = pick_ptr(pool, rng)
                if dst:
                    stmts.append(f"{dst[0]} = 0;")
        return stmts

    # Every function takes `int *p` so any of them can be bound to a
    # single shared function-pointer type (fuzzing Figure 5's paths).
    if cfg.use_function_pointers:
        parts.append("void (*gfp)(int *);")
    for fn in fn_names:
        parts.append(f"void {fn}(int *p);")

    for index, fn in enumerate(fn_names):
        locals_: list[tuple[str, int]] = []
        decls = []
        for j in range(cfg.n_locals):
            level = rng.randint(0, cfg.max_pointer_level)
            locals_.append((f"l{j}", level))
            decls.append(f"    int {'*' * level}l{j};")
        pool = var_pool(locals_) + [("p", 1)]
        callees = fn_names[index + 1 :]
        if cfg.use_recursion and rng.random() < 0.3:
            callees = callees + [fn]
        body = gen_stmts(pool, rng, 0, callees, cfg.n_stmts)
        if cfg.use_heap and rng.random() < 0.5:
            heap_dst = pick_ptr(pool, rng)
            if heap_dst:
                body.append(
                    f"{heap_dst[0]} = "
                    f"(int {'*' * heap_dst[1]}) malloc(4);"
                )
        if cfg.use_function_pointers and rng.random() < 0.4:
            body.append(f"gfp = {rng.choice(fn_names)};")
        body_text = "\n    ".join(body) if body else ";"
        parts.append(
            f"void {fn}(int *p) {{\n"
            + "\n".join(decls)
            + f"\n    {body_text}\n}}"
        )

    main_body = []
    main_locals = []
    for j in range(cfg.n_locals):
        level = rng.randint(0, cfg.max_pointer_level)
        main_locals.append((f"m{j}", level))
        main_body.append(f"    int {'*' * level}m{j};")
    pool = var_pool(main_locals)
    if cfg.use_function_pointers and fn_names:
        main_body.append("    void (*fp)(int *);")
        main_body.append(f"    fp = {rng.choice(fn_names)};")
        if rng.random() < 0.5:
            main_body.append(f"    gfp = {rng.choice(fn_names)};")
    stmts = gen_stmts(pool, rng, 0, fn_names, cfg.n_stmts)
    main_body.extend("    " + s for s in stmts)
    arg = pick_ptr(pool, rng)
    arg_name = arg[0] if arg and arg[1] == 1 else "0"
    if fn_names:
        main_body.append(f"    {rng.choice(fn_names)}({arg_name});")
        if cfg.use_function_pointers:
            # indirect calls: one through the local fp, one through the
            # global gfp if some callee bound it
            main_body.append(f"    fp({arg_name});")
            main_body.append(f"    if (gfp != 0) gfp({arg_name});")
    main_body.append("    return 0;")
    parts.append("int main() {\n" + "\n".join(main_body) + "\n}")
    return "\n\n".join(parts) + "\n"
