"""A small blocking JSON-lines client for the analysis daemon.

One :class:`DaemonClient` is one TCP connection; :meth:`request` sends
one JSON object and blocks for its one-line response.  Responses on a
connection with concurrent *other* requests may interleave, so a
client that wants pipelining should tag requests with ``"id"`` and use
:meth:`send` / :meth:`recv` directly; for the common sequential case
:meth:`request` is enough.  Used by the tests, the load benchmark, and
``repro-pta daemon --ping``.
"""

from __future__ import annotations

import json
import socket


class DaemonClient:
    """Blocking JSON-lines client over one TCP connection."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self.sock.makefile("rwb")

    def send(self, request: dict) -> None:
        self._file.write(json.dumps(request).encode() + b"\n")
        self._file.flush()

    def recv(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return json.loads(line)

    def request(self, request: dict) -> dict:
        """Send one request, block for one response."""
        self.send(request)
        return self.recv()

    # -- telemetry-plane conveniences (repro-pta daemon-trace / top) -------

    def traced(self, request: dict, trace_id: str | None = None) -> dict:
        """Send ``request`` with per-request tracing on; the response
        carries ``trace_id``, and :meth:`trace` fetches the document."""
        body = dict(request)
        body["trace"] = trace_id if trace_id is not None else True
        return self.request(body)

    def trace(self, trace_id: str) -> dict:
        """Fetch one finished trace document by id."""
        return self.request({"cmd": "trace", "trace_id": trace_id})

    def events(self, since: int | None = None) -> dict:
        """Poll the daemon's event journal."""
        body: dict = {"cmd": "events"}
        if since is not None:
            body["since"] = since
        return self.request(body)

    def metrics(
        self, format: str | None = None, per_worker: bool = False
    ) -> dict:
        """Fetch the merged metrics registry."""
        body: dict = {"cmd": "metrics"}
        if format is not None:
            body["format"] = format
        if per_worker:
            body["per_worker"] = True
        return self.request(body)

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
