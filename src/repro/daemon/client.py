"""A small blocking JSON-lines client for the analysis daemon.

One :class:`DaemonClient` is one TCP connection; :meth:`request` sends
one JSON object and blocks for its one-line response.  Responses on a
connection with concurrent *other* requests may interleave, so a
client that wants pipelining should tag requests with ``"id"`` and use
:meth:`send` / :meth:`recv` directly; for the common sequential case
:meth:`request` is enough.  Used by the tests, the load benchmark, and
``repro-pta daemon --ping``.
"""

from __future__ import annotations

import json
import socket


class DaemonClient:
    """Blocking JSON-lines client over one TCP connection."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self.sock.makefile("rwb")

    def send(self, request: dict) -> None:
        self._file.write(json.dumps(request).encode() + b"\n")
        self._file.flush()

    def recv(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return json.loads(line)

    def request(self, request: dict) -> dict:
        """Send one request, block for one response."""
        self.send(request)
        return self.recv()

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
