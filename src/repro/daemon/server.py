"""The concurrent analysis daemon: asyncio front end over worker processes.

Architecture (see docs/DAEMON.md)::

    clients ──TCP/JSON-lines──▶ asyncio front end (this module)
                                  │  admission control + per-client quotas
                                  │  request coalescing (one analysis per
                                  │  in-flight content key)
                                  ▼  shard by ResultStore.key_for(...)
                         worker process 0..N-1  (repro.daemon.worker)
                                  │  warm SessionCache per worker
                                  ▼
                         store backend (file: / sqlite: / memory://)

* **Sharding** — every source-bearing request (``query``, ``check``,
  ``update``) routes by its content key, so one key always lands on
  the same worker: that worker's LRU'd sessions stay warm (repeat
  queries skip decode entirely) and two racing requests for one key
  serialize on its queue instead of analyzing twice.  ``update``
  shards by the *new* source's key — the re-keyed warm session lands
  exactly where later queries for that source will route.
* **Coalescing** — identical in-flight requests (same content key and
  same request body) share one worker round trip; the single response
  fans out to every waiter.  ``daemon.coalesced`` counts the piggyback
  rides, ``daemon.analyses`` counts true analysis runs.
* **Backpressure** — a bounded admission queue: when the dispatched-
  but-unfinished job count reaches ``queue_limit`` the daemon answers
  ``{"ok": false, "error": "overloaded", "retry_after_ms": ...}``
  instead of stalling the socket.  Per-connection in-flight caps
  (``client_inflight``) keep one greedy client from filling the queue.
* **Graceful shutdown** — ``{"cmd": "quit"}``, SIGTERM, or SIGINT
  drain in-flight analyses, flush store writes in every worker, and
  close sessions before exit; atomic backend writes mean a hard kill
  mid-request never leaves a corrupt object either.

The protocol verbs are exactly the stdin serve loop's
(:mod:`repro.service.commands`); ``stats`` and ``provenance`` fan out
to every worker and merge, ``metrics`` answers from the front end's
tracer (which carries the ``daemon.*`` counters, queue-depth gauge,
and per-command latency histograms).
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import signal
import sys
import threading
import time
from dataclasses import dataclass, field

from repro.obs.tracer import Tracer
from repro.service.commands import (
    AGGREGATE_COMMANDS,
    CMD_HANDLERS,
    request_options,
    request_source,
)
from repro.service.store import ResultStore, default_store_url

#: One JSON-lines request (a whole C source travels inline) may be
#: large; the asyncio default 64 KiB readline limit is not enough.
MAX_LINE_BYTES = 32 * 1024 * 1024


@dataclass
class DaemonConfig:
    """Tunables for one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port (reported by Daemon.port)
    store_url: str | None = None  # None = REPRO_PTA_STORE / default
    workers: int = 0  # 0 = os.cpu_count()
    max_sessions: int = 64  # warm QuerySessions kept per worker
    queue_limit: int = 128  # dispatched-but-unfinished job cap
    client_inflight: int = 16  # per-connection outstanding cap
    drain_timeout: float = 30.0  # seconds to wait for in-flight work

    def resolved_workers(self) -> int:
        import os

        if self.workers and self.workers > 0:
            return self.workers
        return os.cpu_count() or 1

    def resolved_store_url(self) -> str:
        return self.store_url or default_store_url()


def _overloaded(reason: str, retry_after_ms: int) -> dict:
    return {
        "ok": False,
        "error": "overloaded",
        "reason": reason,
        "retry_after_ms": retry_after_ms,
    }


class _Connection:
    """Per-client state: write lock and the in-flight quota counter."""

    __slots__ = ("writer", "lock", "inflight", "tasks")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.lock = asyncio.Lock()
        self.inflight = 0
        self.tasks: set[asyncio.Task] = set()


@dataclass
class _WorkerInfo:
    """Last-known facts reported by one worker."""

    sessions: int = 0
    store: dict = field(default_factory=dict)


class Daemon:
    """One daemon instance; drive it with :meth:`run` (blocking) or
    :meth:`start` / :meth:`serve_forever` / :meth:`shutdown` inside an
    event loop."""

    def __init__(
        self, config: DaemonConfig | None = None, tracer: Tracer | None = None
    ):
        self.config = config or DaemonConfig()
        # A private tracer (not the process-global obs one): the event
        # loop is the only writer, and the metrics verb snapshots it.
        self.tracer = tracer or Tracer()
        self.port: int | None = None
        self.host: str | None = None
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._workers: list[multiprocessing.Process] = []
        self._queues: list = []
        self._results = None
        self._pump: threading.Thread | None = None
        self._pump_stop = threading.Event()
        self._worker_info: dict[int, _WorkerInfo] = {}
        self._worker_acks = 0
        # job_id -> (future resolving to (response, info), coalesce key)
        self._jobs: dict[int, tuple[asyncio.Future, str | None]] = {}
        self._inflight: dict[str, asyncio.Future] = {}
        self._next_job = 0
        self._pending = 0
        self._latency_ewma = 0.05  # seconds; seeds retry-after estimates
        self._connections: set[_Connection] = set()
        self._draining = False
        self._stopped = asyncio.Event()
        self.started_at: float | None = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Spawn workers, the result pump, and the TCP listener."""
        config = self.config
        self._loop = asyncio.get_running_loop()
        n_workers = config.resolved_workers()
        store_url = config.resolved_store_url()
        # Fork (where available) shares the already-imported analysis
        # code; workers are spawned before the server accepts traffic.
        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        ctx = multiprocessing.get_context(method)
        self._results = ctx.Queue()
        from repro.daemon.worker import worker_main

        for worker_id in range(n_workers):
            queue = ctx.Queue()
            process = ctx.Process(
                target=worker_main,
                args=(
                    worker_id,
                    store_url,
                    config.max_sessions,
                    queue,
                    self._results,
                ),
                daemon=True,
                name=f"repro-daemon-worker-{worker_id}",
            )
            process.start()
            self._queues.append(queue)
            self._workers.append(process)
            self._worker_info[worker_id] = _WorkerInfo()
        self._pump = threading.Thread(
            target=self._pump_results, name="repro-daemon-pump", daemon=True
        )
        self._pump.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=config.host,
            port=config.port,
            limit=MAX_LINE_BYTES,
        )
        address = self._server.sockets[0].getsockname()
        self.host, self.port = address[0], address[1]
        self.started_at = time.time()
        self.tracer.gauge("daemon.workers", n_workers)

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes."""
        await self._stopped.wait()

    async def run(self) -> None:
        """Start, install signal handlers, and serve until shutdown."""
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(self.shutdown()),
                )
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without support
        await self.serve_forever()

    async def shutdown(self) -> None:
        """Drain in-flight work, flush stores, stop workers, exit."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # 1. Drain: wait for every dispatched job to come back.
        deadline = time.monotonic() + self.config.drain_timeout
        pending = [future for future, _ in self._jobs.values()]
        if pending:
            await asyncio.wait(
                pending, timeout=max(0.0, deadline - time.monotonic())
            )
        # 2. Let response writers finish delivering to clients.
        writers = [
            task
            for conn in list(self._connections)
            for task in list(conn.tasks)
        ]
        if writers:
            await asyncio.wait(
                writers, timeout=max(0.1, deadline - time.monotonic())
            )
        # 3. Stop workers: sentinel, then wait for their flush acks.
        for queue in self._queues:
            queue.put(None)
        join_deadline = max(1.0, deadline - time.monotonic())
        for process in self._workers:
            await self._loop.run_in_executor(
                None, process.join, join_deadline / max(len(self._workers), 1)
            )
            if process.is_alive():
                process.terminate()
        self._pump_stop.set()
        if self._pump is not None:
            await self._loop.run_in_executor(None, self._pump.join, 2.0)
        # 4. Close remaining client connections.
        for conn in list(self._connections):
            try:
                conn.writer.close()
            except Exception:
                pass
        self._stopped.set()

    # -- worker plumbing ---------------------------------------------------

    def _pump_results(self) -> None:
        """Move worker results onto the event loop (runs in a thread)."""
        import queue as queue_mod

        while not self._pump_stop.is_set():
            try:
                item = self._results.get(timeout=0.1)
            except queue_mod.Empty:
                continue
            except (EOFError, OSError):
                break
            self._loop.call_soon_threadsafe(self._complete, *item)

    def _complete(self, worker_id, job_id, response, info) -> None:
        """One worker result arrived (event-loop thread)."""
        if job_id is None:  # shutdown ack: stores flushed and closed
            self._worker_acks += 1
            return
        entry = self._jobs.pop(job_id, None)
        self._pending -= 1
        self.tracer.gauge("daemon.queue_depth", self._pending)
        wall = info.get("wall_s", 0.0)
        self._latency_ewma = 0.8 * self._latency_ewma + 0.2 * wall
        if info.get("analyzed"):
            self.tracer.count("daemon.analyses")
        known = self._worker_info.get(worker_id)
        if known is not None:
            known.sessions = info.get("sessions", known.sessions)
            known.store = info.get("store", known.store)
        if entry is None:
            return
        future, coalesce_key = entry
        if coalesce_key is not None:
            self._inflight.pop(coalesce_key, None)
        if not future.done():
            future.set_result((response, info))

    def _dispatch(
        self, shard: int, request: dict, coalesce_key: str | None
    ) -> asyncio.Future:
        """Queue one job on a worker; the future yields (response, info)."""
        job_id = self._next_job
        self._next_job += 1
        future = self._loop.create_future()
        self._jobs[job_id] = (future, coalesce_key)
        self._pending += 1
        self.tracer.gauge("daemon.queue_depth", self._pending)
        self._queues[shard % len(self._queues)].put((job_id, request))
        return future

    def _retry_after_ms(self) -> int:
        estimate = (
            1000.0
            * self._latency_ewma
            * max(self._pending, 1)
            / max(len(self._workers), 1)
        )
        return int(min(5000.0, max(50.0, estimate)))

    # -- request handling --------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        conn = _Connection(writer)
        self._connections.add(conn)
        self.tracer.count("daemon.connections")
        self.tracer.gauge("daemon.open_connections", len(self._connections))
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                    ConnectionError,
                ):
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                task = asyncio.ensure_future(
                    self._handle_line(conn, line)
                )
                conn.tasks.add(task)
                task.add_done_callback(conn.tasks.discard)
        finally:
            if conn.tasks:
                await asyncio.wait(list(conn.tasks))
            self._connections.discard(conn)
            self.tracer.gauge(
                "daemon.open_connections", len(self._connections)
            )
            try:
                writer.close()
            except Exception:
                pass

    async def _handle_line(self, conn: _Connection, line: bytes) -> None:
        start = time.perf_counter()
        request: dict | None = None
        try:
            parsed = json.loads(line)
        except json.JSONDecodeError as exc:
            response = {"ok": False, "error": f"bad JSON: {exc}"}
        else:
            if not isinstance(parsed, dict):
                response = {"ok": False, "error": "request must be an object"}
            else:
                request = parsed
                response = await self._answer(conn, request)
        verb = (request or {}).get("cmd", "query")
        # Copy before annotating: coalesced waiters share one response
        # object, and each waiter stamps its own id and wall time.
        response = dict(response)
        if request is not None and "id" in request:
            response["id"] = request["id"]
        quit_now = response.pop("quit", False)
        elapsed = time.perf_counter() - start
        response["metrics"] = {"wall_ms": round(elapsed * 1000, 3)}
        self.tracer.count("daemon.requests")
        if not response.get("ok", False):
            self.tracer.count("daemon.errors")
        self.tracer.observe("daemon.request", elapsed)
        self.tracer.observe(f"daemon.cmd.{verb}", elapsed)
        async with conn.lock:
            try:
                conn.writer.write(
                    json.dumps(response, sort_keys=True).encode() + b"\n"
                )
                await conn.writer.drain()
            except (ConnectionError, RuntimeError):
                return
        if quit_now:
            asyncio.ensure_future(self.shutdown())

    async def _answer(self, conn: _Connection, request: dict) -> dict:
        """Route one parsed request and await its response."""
        if self._draining:
            return {"ok": False, "error": "shutting down"}
        cmd = request.get("cmd")
        if cmd == "quit":
            # Answer like the serve loop, then drain and exit.
            return dict(CMD_HANDLERS["quit"](request, None, None))
        if cmd == "metrics":
            return self._metrics_response()
        if cmd in AGGREGATE_COMMANDS:
            return await self._fan_out(request)
        if cmd is not None and cmd not in CMD_HANDLERS:
            return {
                "ok": False,
                "error": f"unknown cmd {cmd!r}",
                "cmd": cmd,
                "known_cmds": sorted(CMD_HANDLERS),
            }
        if cmd is None and "query" not in request:
            return {"ok": False, "error": "missing 'query'"}

        # Source-bearing request (query or check): route by content key.
        name, source, error = request_source(request)
        if error is not None:
            return error
        options, error = request_options(request)
        if error is not None:
            return error
        key = ResultStore.key_for(source, options)

        if conn.inflight >= self.config.client_inflight:
            self.tracer.count("daemon.shed")
            self.tracer.count("daemon.shed.client_quota")
            return _overloaded("client_quota", self._retry_after_ms())

        conn.inflight += 1
        try:
            body = dict(request)
            body.pop("id", None)
            coalesce_key = key + "\n" + json.dumps(body, sort_keys=True)
            future = self._inflight.get(coalesce_key)
            if future is not None:
                self.tracer.count("daemon.coalesced")
            else:
                if self._pending >= self.config.queue_limit:
                    self.tracer.count("daemon.shed")
                    self.tracer.count("daemon.shed.queue_full")
                    return _overloaded("queue_full", self._retry_after_ms())
                shard = int(key[:8], 16)
                future = self._dispatch(shard, body, coalesce_key)
                self._inflight[coalesce_key] = future
            response, _ = await asyncio.shield(future)
            return response
        finally:
            conn.inflight -= 1

    # -- control verbs -----------------------------------------------------

    def _merged_store_stats(self) -> dict:
        totals = {"hits": 0, "misses": 0, "puts": 0, "invalid": 0}
        for info in self._worker_info.values():
            for field_name in totals:
                totals[field_name] += info.store.get(field_name, 0)
        lookups = totals["hits"] + totals["misses"]
        totals["hit_rate"] = (
            round(totals["hits"] / lookups, 4) if lookups else 0.0
        )
        return totals

    def _metrics_response(self) -> dict:
        # Same shape as the serve loop's metrics verb; the snapshot
        # carries the daemon.* counters, gauges, and histograms.
        return {
            "ok": True,
            "result": {
                "tracing": self.tracer.enabled,
                "metrics": self.tracer.snapshot(),
                "store": self._merged_store_stats(),
                "sessions": sum(
                    info.sessions for info in self._worker_info.values()
                ),
            },
        }

    async def _fan_out(self, request: dict) -> dict:
        """stats/provenance: ask every worker, merge shard answers."""
        body = dict(request)
        body.pop("id", None)
        futures = [
            self._dispatch(shard, body, None)
            for shard in range(len(self._workers))
        ]
        results = await asyncio.gather(*futures)
        responses = [response for response, _ in results]
        failed = next((r for r in responses if not r.get("ok")), None)
        if failed is not None:
            return failed
        if request["cmd"] == "stats":
            merged = {
                "store": {"hits": 0, "misses": 0, "puts": 0, "invalid": 0},
                "sessions": 0,
                "queries": {},
            }
            for response in responses:
                result = response["result"]
                for field_name in ("hits", "misses", "puts", "invalid"):
                    merged["store"][field_name] += result["store"][
                        field_name
                    ]
                merged["sessions"] += result["sessions"]
                merged["queries"].update(result["queries"])
            lookups = merged["store"]["hits"] + merged["store"]["misses"]
            merged["store"]["hit_rate"] = (
                round(merged["store"]["hits"] / lookups, 4) if lookups else 0.0
            )
            return {"ok": True, "result": merged}
        # provenance: union the per-shard session summaries.
        sessions: dict = {}
        for response in responses:
            sessions.update(response["result"]["sessions"])
        return {"ok": True, "result": {"enabled": True, "sessions": sessions}}


def run_daemon(config: DaemonConfig | None = None) -> int:
    """Blocking entry point used by ``repro-pta daemon``."""
    daemon = Daemon(config)

    # Announce the bound address on stdout so callers (tests, scripts,
    # editors) can connect to an ephemeral --port 0.
    async def announced() -> None:
        await daemon.start()
        # Handlers go in before the announce line: a supervisor may
        # signal the instant it sees the address.
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(daemon.shutdown()),
                )
            except (NotImplementedError, RuntimeError):
                pass
        print(
            f"daemon: listening on {daemon.host}:{daemon.port} "
            f"workers={len(daemon._workers)} "
            f"store={daemon.config.resolved_store_url()}",
            flush=True,
        )
        await daemon.serve_forever()

    try:
        asyncio.run(announced())
    except KeyboardInterrupt:
        pass
    print("daemon: stopped", file=sys.stderr)
    return 0
