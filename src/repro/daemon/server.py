"""The concurrent analysis daemon: asyncio front end over worker processes.

Architecture (see docs/DAEMON.md)::

    clients ──TCP/JSON-lines──▶ asyncio front end (this module)
                                  │  admission control + per-client quotas
                                  │  request coalescing (one analysis per
                                  │  in-flight content key)
                                  ▼  shard by ResultStore.key_for(...)
                         worker process 0..N-1  (repro.daemon.worker)
                                  │  warm SessionCache per worker
                                  ▼
                         store backend (file: / sqlite: / memory://)

* **Sharding** — every source-bearing request (``query``, ``check``,
  ``update``) routes by its content key, so one key always lands on
  the same worker: that worker's LRU'd sessions stay warm (repeat
  queries skip decode entirely) and two racing requests for one key
  serialize on its queue instead of analyzing twice.  ``update``
  shards by the *new* source's key — the re-keyed warm session lands
  exactly where later queries for that source will route.
* **Coalescing** — identical in-flight requests (same content key and
  same request body) share one worker round trip; the single response
  fans out to every waiter.  ``daemon.coalesced`` counts the piggyback
  rides, ``daemon.analyses`` counts true analysis runs.
* **Backpressure** — a bounded admission queue: when the dispatched-
  but-unfinished job count reaches ``queue_limit`` the daemon answers
  ``{"ok": false, "error": "overloaded", "retry_after_ms": ...}``
  instead of stalling the socket.  Per-connection in-flight caps
  (``client_inflight``) keep one greedy client from filling the queue.
* **Graceful shutdown** — ``{"cmd": "quit"}``, SIGTERM, or SIGINT
  drain in-flight analyses, flush store writes in every worker, and
  close sessions before exit; atomic backend writes mean a hard kill
  mid-request never leaves a corrupt object either.

The protocol verbs are exactly the stdin serve loop's
(:mod:`repro.service.commands`); ``stats`` and ``provenance`` fan out
to every worker and merge, and so does ``metrics``: every worker's
registry merges with the front end's ``daemon.*`` counters / gauges /
histograms under the rules of :mod:`repro.obs.merge` (counters sum,
gauges last-write-wins with source, histograms add bucket-wise).

The telemetry plane on top (docs/OBSERVABILITY.md, "Telemetry
plane"): per-request distributed traces (``{"trace": true}`` —
admission/queue/worker spans merged with the worker-captured tree,
drained via ``{"cmd": "trace"}``), a sequence-numbered event journal
(``{"cmd": "events"}`` — sheds, worker restarts, update tiers, slow
requests), a slow-request log (``REPRO_PTA_SLOW_MS`` / ``--slow-ms``
traces every over-budget request), and a ``--metrics-port`` HTTP
listener exposing the merged registry as Prometheus text exposition.
``telemetry=False`` turns the whole plane off: the front end runs the
null tracer and every hook reduces to one attribute check.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import signal
import sys
import threading
import time
from dataclasses import dataclass, field

from repro.obs.journal import Journal
from repro.obs.merge import merge_snapshots
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.obs.traces import (
    TRACE_VERSION,
    TraceBuffer,
    new_trace_id,
    synthetic_span,
)
from repro.service.commands import (
    AGGREGATE_COMMANDS,
    CMD_HANDLERS,
    request_options,
    request_source,
)
from repro.service.store import ResultStore, default_store_url

#: One JSON-lines request (a whole C source travels inline) may be
#: large; the asyncio default 64 KiB readline limit is not enough.
MAX_LINE_BYTES = 32 * 1024 * 1024


@dataclass
class DaemonConfig:
    """Tunables for one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port (reported by Daemon.port)
    store_url: str | None = None  # None = REPRO_PTA_STORE / default
    workers: int = 0  # 0 = os.cpu_count()
    max_sessions: int = 64  # warm QuerySessions kept per worker
    queue_limit: int = 128  # dispatched-but-unfinished job cap
    client_inflight: int = 16  # per-connection outstanding cap
    drain_timeout: float = 30.0  # seconds to wait for in-flight work
    telemetry: bool = True  # front-end metrics/journal/trace capture
    slow_ms: float | None = None  # None = $REPRO_PTA_SLOW_MS (off unset)
    metrics_port: int | None = None  # Prometheus HTTP listener (off=None)
    trace_buffer: int = 256  # finished trace documents retained
    journal_capacity: int = 512  # journal ring size

    def resolved_workers(self) -> int:
        import os

        if self.workers and self.workers > 0:
            return self.workers
        return os.cpu_count() or 1

    def resolved_store_url(self) -> str:
        return self.store_url or default_store_url()

    def resolved_slow_s(self) -> float | None:
        """The slow-request threshold in seconds (None = disabled).

        An explicit ``slow_ms`` wins; otherwise the ``REPRO_PTA_SLOW_MS``
        environment variable applies (documented in docs/DAEMON.md)."""
        import os

        raw = self.slow_ms
        if raw is None:
            text = os.environ.get("REPRO_PTA_SLOW_MS", "").strip()
            if not text:
                return None
            try:
                raw = float(text)
            except ValueError:
                return None
        return raw / 1000.0 if raw > 0 else None


def _overloaded(reason: str, retry_after_ms: int) -> dict:
    return {
        "ok": False,
        "error": "overloaded",
        "reason": reason,
        "retry_after_ms": retry_after_ms,
    }


class _Connection:
    """Per-client state: write lock and the in-flight quota counter."""

    __slots__ = ("writer", "lock", "inflight", "tasks")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.lock = asyncio.Lock()
        self.inflight = 0
        self.tasks: set[asyncio.Task] = set()


@dataclass
class _WorkerInfo:
    """Last-known facts reported by one worker."""

    sessions: int = 0
    store: dict = field(default_factory=dict)


class Daemon:
    """One daemon instance; drive it with :meth:`run` (blocking) or
    :meth:`start` / :meth:`serve_forever` / :meth:`shutdown` inside an
    event loop."""

    def __init__(
        self, config: DaemonConfig | None = None, tracer: Tracer | None = None
    ):
        self.config = config or DaemonConfig()
        # A private tracer (not the process-global obs one): the event
        # loop is the only writer, and the metrics verb snapshots it.
        # Telemetry off swaps in the shared null tracer — every hook
        # reduces to one attribute check and no state accumulates.
        if tracer is not None:
            self.tracer = tracer
        else:
            self.tracer = Tracer() if self.config.telemetry else NULL_TRACER
        #: The daemon's own journal + trace buffer (instance-private,
        #: not the obs singletons: a DaemonHandle sharing a process
        #: with a stdin serve loop must not cross-contaminate).
        self.journal = Journal(self.config.journal_capacity)
        self.traces = TraceBuffer(self.config.trace_buffer)
        self._slow_s = self.config.resolved_slow_s()
        self.port: int | None = None
        self.host: str | None = None
        self.metrics_port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._metrics_server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._workers: list[multiprocessing.Process] = []
        self._queues: list = []
        self._results = None
        self._pump: threading.Thread | None = None
        self._pump_stop = threading.Event()
        self._worker_info: dict[int, _WorkerInfo] = {}
        self._worker_acks = 0
        self._supervisor: asyncio.Task | None = None
        self.worker_restarts = 0
        # job_id -> (future -> (response, info), coalesce key, worker)
        self._jobs: dict[
            int, tuple[asyncio.Future, str | None, int]
        ] = {}
        self._inflight: dict[str, asyncio.Future] = {}
        self._next_job = 0
        self._pending = 0
        self._latency_ewma = 0.05  # seconds; seeds retry-after estimates
        self._connections: set[_Connection] = set()
        self._draining = False
        self._stopped = asyncio.Event()
        self.started_at: float | None = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Spawn workers, the result pump, and the TCP listener."""
        config = self.config
        self._loop = asyncio.get_running_loop()
        n_workers = config.resolved_workers()
        store_url = config.resolved_store_url()
        # Fork (where available) shares the already-imported analysis
        # code; workers are spawned before the server accepts traffic.
        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        ctx = multiprocessing.get_context(method)
        self._results = ctx.Queue()
        from repro.daemon.worker import worker_main

        for worker_id in range(n_workers):
            queue = ctx.Queue()
            process = ctx.Process(
                target=worker_main,
                args=(
                    worker_id,
                    store_url,
                    config.max_sessions,
                    queue,
                    self._results,
                    config.telemetry,
                ),
                daemon=True,
                name=f"repro-daemon-worker-{worker_id}",
            )
            process.start()
            self._queues.append(queue)
            self._workers.append(process)
            self._worker_info[worker_id] = _WorkerInfo()
        self._pump = threading.Thread(
            target=self._pump_results, name="repro-daemon-pump", daemon=True
        )
        self._pump.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=config.host,
            port=config.port,
            limit=MAX_LINE_BYTES,
        )
        address = self._server.sockets[0].getsockname()
        self.host, self.port = address[0], address[1]
        if config.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_scrape,
                host=config.host,
                port=config.metrics_port,
            )
            self.metrics_port = self._metrics_server.sockets[0].getsockname()[
                1
            ]
        self._supervisor = asyncio.ensure_future(self._supervise_workers())
        self.started_at = time.time()
        self.tracer.gauge("daemon.workers", n_workers)
        if self.config.telemetry:
            self.journal.emit(
                "daemon_start",
                workers=n_workers,
                store=store_url,
                port=self.port,
            )

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes."""
        await self._stopped.wait()

    async def run(self) -> None:
        """Start, install signal handlers, and serve until shutdown."""
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(self.shutdown()),
                )
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without support
        await self.serve_forever()

    async def shutdown(self) -> None:
        """Drain in-flight work, flush stores, stop workers, exit."""
        if self._draining:
            return
        self._draining = True
        if self._supervisor is not None:
            self._supervisor.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        # 1. Drain: wait for every dispatched job to come back.
        deadline = time.monotonic() + self.config.drain_timeout
        pending = [future for future, _, _ in self._jobs.values()]
        if pending:
            await asyncio.wait(
                pending, timeout=max(0.0, deadline - time.monotonic())
            )
        # 2. Let response writers finish delivering to clients.
        writers = [
            task
            for conn in list(self._connections)
            for task in list(conn.tasks)
        ]
        if writers:
            await asyncio.wait(
                writers, timeout=max(0.1, deadline - time.monotonic())
            )
        # 3. Stop workers: sentinel, then wait for their flush acks.
        for queue in self._queues:
            queue.put(None)
        join_deadline = max(1.0, deadline - time.monotonic())
        for process in self._workers:
            await self._loop.run_in_executor(
                None, process.join, join_deadline / max(len(self._workers), 1)
            )
            if process.is_alive():
                process.terminate()
        self._pump_stop.set()
        if self._pump is not None:
            await self._loop.run_in_executor(None, self._pump.join, 2.0)
        # 4. Close remaining client connections.
        for conn in list(self._connections):
            try:
                conn.writer.close()
            except Exception:
                pass
        self._stopped.set()

    # -- worker plumbing ---------------------------------------------------

    def _pump_results(self) -> None:
        """Move worker results onto the event loop (runs in a thread)."""
        import queue as queue_mod

        while not self._pump_stop.is_set():
            try:
                item = self._results.get(timeout=0.1)
            except queue_mod.Empty:
                continue
            except (EOFError, OSError):
                break
            self._loop.call_soon_threadsafe(self._complete, *item)

    def _complete(self, worker_id, job_id, response, info) -> None:
        """One worker result arrived (event-loop thread)."""
        if job_id is None:  # shutdown ack: stores flushed and closed
            self._worker_acks += 1
            return
        entry = self._jobs.pop(job_id, None)
        if entry is None:
            # A late result for a job the supervisor already failed
            # (its worker died and was replaced): the waiter was
            # answered, and _pending was repaired then — drop it.
            return
        self._pending -= 1
        self.tracer.gauge("daemon.queue_depth", self._pending)
        wall = info.get("wall_s", 0.0)
        self._latency_ewma = 0.8 * self._latency_ewma + 0.2 * wall
        if info.get("analyzed"):
            self.tracer.count("daemon.analyses")
        known = self._worker_info.get(worker_id)
        if known is not None:
            known.sessions = info.get("sessions", known.sessions)
            known.store = info.get("store", known.store)
        # Journal events the worker recorded while answering (update
        # tiers chosen, slow work) merge into the daemon's journal,
        # re-sequenced but keeping their origin stamp.
        for event in info.get("events", ()):
            self.journal.ingest(event, source=f"worker-{worker_id}")
        future, coalesce_key, _ = entry
        if coalesce_key is not None:
            self._inflight.pop(coalesce_key, None)
        if not future.done():
            future.set_result((response, info))

    def _dispatch(
        self, shard: int, request: dict, coalesce_key: str | None
    ) -> asyncio.Future:
        """Queue one job on a worker; the future yields (response, info)."""
        job_id = self._next_job
        self._next_job += 1
        future = self._loop.create_future()
        worker_index = shard % len(self._queues)
        self._jobs[job_id] = (future, coalesce_key, worker_index)
        self._pending += 1
        self.tracer.gauge("daemon.queue_depth", self._pending)
        self._queues[worker_index].put((job_id, request))
        return future

    async def _supervise_workers(self) -> None:
        """Detect dead workers: fail their in-flight jobs with a
        structured error (clients get an answer, never a hang), journal
        a ``worker_restart`` event, and respawn on the same queue so
        the shard keeps its routing."""
        try:
            while not self._draining:
                await asyncio.sleep(0.2)
                for index, process in enumerate(self._workers):
                    if process.is_alive() or self._draining:
                        continue
                    self._restart_worker(index, process)
        except asyncio.CancelledError:
            pass

    def _restart_worker(self, index: int, dead) -> None:
        exitcode = dead.exitcode
        self.worker_restarts += 1
        self.tracer.count("daemon.worker_restarts")
        self.journal.emit(
            "worker_restart", worker=index, exitcode=exitcode
        )
        failed = [
            (job_id, entry)
            for job_id, entry in self._jobs.items()
            if entry[2] == index
        ]
        for job_id, (future, coalesce_key, _) in failed:
            self._jobs.pop(job_id, None)
            self._pending -= 1
            if coalesce_key is not None:
                self._inflight.pop(coalesce_key, None)
            if not future.done():
                future.set_result(
                    (
                        {
                            "ok": False,
                            "error": f"worker {index} died mid-request "
                            f"(exit code {exitcode}); it has been "
                            "restarted — retry the request",
                            "reason": "worker_died",
                            "worker": index,
                            "retryable": True,
                        },
                        {},
                    )
                )
        self.tracer.gauge("daemon.queue_depth", self._pending)
        ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        from repro.daemon.worker import worker_main

        process = ctx.Process(
            target=worker_main,
            args=(
                index,
                self.config.resolved_store_url(),
                self.config.max_sessions,
                self._queues[index],
                self._results,
                self.config.telemetry,
            ),
            daemon=True,
            name=f"repro-daemon-worker-{index}",
        )
        process.start()
        self._workers[index] = process

    def _retry_after_ms(self) -> int:
        estimate = (
            1000.0
            * self._latency_ewma
            * max(self._pending, 1)
            / max(len(self._workers), 1)
        )
        return int(min(5000.0, max(50.0, estimate)))

    # -- request handling --------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        conn = _Connection(writer)
        self._connections.add(conn)
        self.tracer.count("daemon.connections")
        self.tracer.gauge("daemon.open_connections", len(self._connections))
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                    ConnectionError,
                ):
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                task = asyncio.ensure_future(
                    self._handle_line(conn, line)
                )
                conn.tasks.add(task)
                task.add_done_callback(conn.tasks.discard)
        finally:
            if conn.tasks:
                await asyncio.wait(list(conn.tasks))
            self._connections.discard(conn)
            self.tracer.gauge(
                "daemon.open_connections", len(self._connections)
            )
            try:
                writer.close()
            except Exception:
                pass

    async def _handle_line(self, conn: _Connection, line: bytes) -> None:
        start = time.perf_counter()
        request: dict | None = None
        try:
            parsed = json.loads(line)
        except json.JSONDecodeError as exc:
            response = {"ok": False, "error": f"bad JSON: {exc}"}
        else:
            if not isinstance(parsed, dict):
                response = {"ok": False, "error": "request must be an object"}
            else:
                request = parsed
                response = await self._answer(conn, request)
        verb = (request or {}).get("cmd", "query")
        # Copy before annotating: coalesced waiters share one response
        # object, and each waiter stamps its own id and wall time.
        response = dict(response)
        if request is not None and "id" in request:
            response["id"] = request["id"]
        quit_now = response.pop("quit", False)
        elapsed = time.perf_counter() - start
        response["metrics"] = {"wall_ms": round(elapsed * 1000, 3)}
        self.tracer.count("daemon.requests")
        if not response.get("ok", False):
            self.tracer.count("daemon.errors")
        self.tracer.observe("daemon.request", elapsed)
        self.tracer.observe(f"daemon.cmd.{verb}", elapsed)
        async with conn.lock:
            try:
                conn.writer.write(
                    json.dumps(response, sort_keys=True).encode() + b"\n"
                )
                await conn.writer.drain()
            except (ConnectionError, RuntimeError):
                return
        if quit_now:
            asyncio.ensure_future(self.shutdown())

    async def _answer(self, conn: _Connection, request: dict) -> dict:
        """Route one parsed request and await its response."""
        if self._draining:
            return {"ok": False, "error": "shutting down"}
        cmd = request.get("cmd")
        if cmd == "quit":
            # Answer like the serve loop, then drain and exit.
            return dict(CMD_HANDLERS["quit"](request, None, None))
        if cmd == "metrics":
            return await self._metrics_response(request)
        if cmd == "events":
            return self.journal.answer(request.get("since"))
        if cmd == "trace":
            return self.traces.answer(
                request.get("trace_id", request.get("id"))
            )
        if cmd in AGGREGATE_COMMANDS:
            return await self._fan_out(request)
        if cmd is not None and cmd not in CMD_HANDLERS:
            return {
                "ok": False,
                "error": f"unknown cmd {cmd!r}",
                "cmd": cmd,
                "known_cmds": sorted(CMD_HANDLERS),
            }
        if cmd is None and "query" not in request:
            return {"ok": False, "error": "missing 'query'"}

        # Source-bearing request (query or check): route by content key.
        name, source, error = request_source(request)
        if error is not None:
            return error
        options, error = request_options(request)
        if error is not None:
            return error
        key = ResultStore.key_for(source, options)

        telemetry = self.config.telemetry
        trace_id: str | None = None
        if telemetry and request.get("trace"):
            supplied = request["trace"]
            trace_id = (
                supplied if isinstance(supplied, str) else new_trace_id()
            )

        if conn.inflight >= self.config.client_inflight:
            self.tracer.count("daemon.shed")
            self.tracer.count("daemon.shed.client_quota")
            if telemetry:
                self.journal.emit(
                    "shed", reason="client_quota", key=key[:12]
                )
            return _overloaded("client_quota", self._retry_after_ms())

        conn.inflight += 1
        admitted_s = time.perf_counter()
        try:
            body = dict(request)
            body.pop("id", None)
            # "trace" leaves the body *before* the coalesce key is
            # computed: a traced request and its untraced twin are the
            # same analysis and must share one worker round trip.
            body.pop("trace", None)
            coalesce_key = key + "\n" + json.dumps(body, sort_keys=True)
            future = self._inflight.get(coalesce_key)
            coalesced = future is not None
            if coalesced:
                self.tracer.count("daemon.coalesced")
            else:
                if self._pending >= self.config.queue_limit:
                    self.tracer.count("daemon.shed")
                    self.tracer.count("daemon.shed.queue_full")
                    if telemetry:
                        self.journal.emit(
                            "shed", reason="queue_full", key=key[:12]
                        )
                    return _overloaded("queue_full", self._retry_after_ms())
                shard = int(key[:8], 16)
                if trace_id is not None:
                    # The dispatcher's id rides into the worker; the
                    # worker captures its span tree under it and ships
                    # the document back through the result queue.
                    body["trace"] = trace_id
                future = self._dispatch(shard, body, coalesce_key)
                self._inflight[coalesce_key] = future
            dispatched_s = time.perf_counter()
            response, info = await asyncio.shield(future)
            if telemetry:
                response = self._finish_telemetry(
                    response,
                    info,
                    trace_id,
                    cmd or "query",
                    key,
                    admitted_s,
                    dispatched_s,
                    coalesced,
                )
            return response
        finally:
            conn.inflight -= 1

    def _finish_telemetry(
        self,
        response: dict,
        info: dict,
        trace_id: str | None,
        cmd: str,
        key: str,
        admitted_s: float,
        dispatched_s: float,
        coalesced: bool,
    ) -> dict:
        """Post-completion telemetry for one dispatched request: build
        the merged trace document (requested traces, and slow requests
        even untraced) and journal slow requests."""
        done_s = time.perf_counter()
        total_s = done_s - admitted_s
        slow = self._slow_s is not None and total_s >= self._slow_s
        if trace_id is None and not slow:
            return response
        if trace_id is None:
            trace_id = new_trace_id()
        self._build_trace_document(
            trace_id,
            cmd,
            admitted_s,
            dispatched_s,
            done_s,
            info,
            coalesced,
            slow,
        )
        if slow:
            self.tracer.count("daemon.slow_requests")
            self.journal.emit(
                "slow_request",
                cmd=cmd,
                wall_ms=round(total_s * 1000, 3),
                key=key[:12],
                trace_id=trace_id,
                coalesced=coalesced,
            )
        response = dict(response)
        response["trace_id"] = trace_id
        return response

    def _build_trace_document(
        self,
        trace_id: str,
        cmd: str,
        admitted_s: float,
        dispatched_s: float,
        done_s: float,
        info: dict,
        coalesced: bool,
        slow: bool,
    ) -> dict:
        """One coherent tree for one request: server-side admission /
        queue / worker spans synthesized from the timestamps the front
        end already collected, with the worker-captured span tree (when
        the dispatch was traced) grafted under ``daemon.worker``.

        A traced request that *coalesced* onto an untraced in-flight
        job gets server-side spans only — the worker never saw a trace
        id — which the document marks with ``coalesced``."""
        total_s = done_s - admitted_s
        admission_s = dispatched_s - admitted_s
        children = [
            synthetic_span(
                "daemon.admission",
                0.0,
                admission_s,
                attrs={"coalesced": coalesced},
            )
        ]
        worker_doc = info.get("trace")
        worker_wall = info.get("wall_s")
        if worker_wall is not None:
            queue_s = max(0.0, total_s - admission_s - worker_wall)
            children.append(
                synthetic_span("daemon.queue", admission_s, queue_s)
            )
            attrs = {}
            if worker_doc and worker_doc.get("trace_id") != trace_id:
                # A traced joiner sharing a dispatch traced under a
                # different id: keep the provenance link.
                attrs["origin_trace_id"] = worker_doc["trace_id"]
            children.append(
                synthetic_span(
                    "daemon.worker",
                    admission_s + queue_s,
                    worker_wall,
                    attrs=attrs or None,
                    children=(worker_doc or {}).get("spans") or None,
                )
            )
        document = {
            "trace_version": TRACE_VERSION,
            "trace_id": trace_id,
            "transport": "tcp",
            "slow": slow,
            "spans": [
                synthetic_span(
                    "daemon.request",
                    0.0,
                    total_s,
                    attrs={"cmd": cmd},
                    children=children,
                )
            ],
        }
        if worker_doc and worker_doc.get("metrics"):
            document["metrics"] = worker_doc["metrics"]
        self.traces.put(trace_id, document)
        return document

    # -- control verbs -----------------------------------------------------

    def _merged_store_stats(self) -> dict:
        totals = {"hits": 0, "misses": 0, "puts": 0, "invalid": 0}
        for info in self._worker_info.values():
            for field_name in totals:
                totals[field_name] += info.store.get(field_name, 0)
        lookups = totals["hits"] + totals["misses"]
        totals["hit_rate"] = (
            round(totals["hits"] / lookups, 4) if lookups else 0.0
        )
        return totals

    @staticmethod
    def _merge_backend_stats(stats_list: list[dict]) -> dict:
        """Sum the numeric facts across worker backend reports; the
        identifying fields (backend kind, url) come from the first."""
        merged: dict = {}
        for stats in stats_list:
            for name, value in stats.items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    merged.setdefault(name, value)
                else:
                    merged[name] = merged.get(name, 0) + value
        return merged

    async def _metrics_response(self, request: dict) -> dict:
        """The ``metrics`` verb: fan out to every worker and merge.

        Worker counters sum, gauges keep their last writer (with
        ``gauge_sources`` naming it), histograms add bucket-wise — so
        the merged registry reads as if one process had served every
        request (docs/OBSERVABILITY.md).  ``{"per_worker": true}``
        additionally returns each unmerged snapshot; ``{"format":
        "prometheus"}`` renders the merged registry as text exposition.
        """
        requested_format = request.get("format")
        if requested_format not in (None, "json", "prometheus"):
            return {
                "ok": False,
                "error": f"unknown metrics format {requested_format!r}",
                "known_formats": ["json", "prometheus"],
            }
        named = [("server", self.tracer.snapshot())]
        sessions = 0
        backends: list[dict] = []
        workers_failed = 0
        if not self._draining and self._workers:
            body = {"cmd": "metrics"}
            futures = [
                self._dispatch(shard, body, None)
                for shard in range(len(self._workers))
            ]
            results = await asyncio.gather(*futures)
            for worker_id, (response, _) in enumerate(results):
                if not response.get("ok"):
                    workers_failed += 1
                    continue
                shard_result = response["result"]
                named.append(
                    (f"worker-{worker_id}", shard_result.get("metrics", {}))
                )
                sessions += shard_result.get("sessions", 0)
                if shard_result.get("backend"):
                    backends.append(shard_result["backend"])
        merged = merge_snapshots(named)
        result: dict = {
            "tracing": self.tracer.enabled,
            "telemetry": self.config.telemetry,
            "metrics": merged,
            "store": self._merged_store_stats(),
            "backend": self._merge_backend_stats(backends),
            "sessions": sessions,
            "workers": len(self._workers),
        }
        if workers_failed:
            result["workers_failed"] = workers_failed
        if request.get("per_worker"):
            result["per_worker"] = dict(named)
        if requested_format == "prometheus":
            from repro.obs.prometheus import render_prometheus

            uptime = (
                time.time() - self.started_at if self.started_at else 0.0
            )
            result["prometheus"] = render_prometheus(
                merged,
                extra_gauges={
                    "daemon.sessions": sessions,
                    "daemon.uptime_seconds": round(uptime, 3),
                },
            )
        return {"ok": True, "result": result}

    async def _handle_metrics_scrape(self, reader, writer) -> None:
        """A deliberately tiny HTTP/1.0 responder for ``--metrics-port``:
        ``GET /metrics`` answers the Prometheus text exposition of the
        merged registry (no HTTP library — scrapers send one request
        and we close the connection)."""
        try:
            request_line = await reader.readline()
            while True:
                header = await reader.readline()
                if not header or header in (b"\r\n", b"\n"):
                    break
            parts = request_line.split()
            path = parts[1].decode("latin-1") if len(parts) >= 2 else "/"
            if path.split("?")[0] not in ("/metrics", "/"):
                status, body = "404 Not Found", b"not found\n"
                content_type = "text/plain; charset=utf-8"
            else:
                response = await self._metrics_response(
                    {"cmd": "metrics", "format": "prometheus"}
                )
                if response.get("ok"):
                    status = "200 OK"
                    body = response["result"]["prometheus"].encode()
                    content_type = (
                        "text/plain; version=0.0.4; charset=utf-8"
                    )
                else:
                    status, body = "503 Service Unavailable", b"draining\n"
                    content_type = "text/plain; charset=utf-8"
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode()
                + body
            )
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _fan_out(self, request: dict) -> dict:
        """stats/provenance: ask every worker, merge shard answers."""
        body = dict(request)
        body.pop("id", None)
        futures = [
            self._dispatch(shard, body, None)
            for shard in range(len(self._workers))
        ]
        results = await asyncio.gather(*futures)
        responses = [response for response, _ in results]
        failed = next((r for r in responses if not r.get("ok")), None)
        if failed is not None:
            return failed
        if request["cmd"] == "stats":
            merged = {
                "store": {"hits": 0, "misses": 0, "puts": 0, "invalid": 0},
                "sessions": 0,
                "queries": {},
            }
            for response in responses:
                result = response["result"]
                for field_name in ("hits", "misses", "puts", "invalid"):
                    merged["store"][field_name] += result["store"][
                        field_name
                    ]
                merged["sessions"] += result["sessions"]
                merged["queries"].update(result["queries"])
            lookups = merged["store"]["hits"] + merged["store"]["misses"]
            merged["store"]["hit_rate"] = (
                round(merged["store"]["hits"] / lookups, 4) if lookups else 0.0
            )
            return {"ok": True, "result": merged}
        # provenance: union the per-shard session summaries.
        sessions: dict = {}
        for response in responses:
            sessions.update(response["result"]["sessions"])
        return {"ok": True, "result": {"enabled": True, "sessions": sessions}}


def run_daemon(config: DaemonConfig | None = None) -> int:
    """Blocking entry point used by ``repro-pta daemon``."""
    daemon = Daemon(config)

    # Announce the bound address on stdout so callers (tests, scripts,
    # editors) can connect to an ephemeral --port 0.
    async def announced() -> None:
        await daemon.start()
        # Handlers go in before the announce line: a supervisor may
        # signal the instant it sees the address.
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(daemon.shutdown()),
                )
            except (NotImplementedError, RuntimeError):
                pass
        print(
            f"daemon: listening on {daemon.host}:{daemon.port} "
            f"workers={len(daemon._workers)} "
            f"store={daemon.config.resolved_store_url()}",
            flush=True,
        )
        await daemon.serve_forever()

    try:
        asyncio.run(announced())
    except KeyboardInterrupt:
        pass
    print("daemon: stopped", file=sys.stderr)
    return 0
