"""``repro.daemon`` — the concurrent analysis server.

An asyncio TCP front end speaking the JSON-lines service protocol
(the same verbs as ``repro-pta batch --serve``; see
:mod:`repro.service.commands` and docs/DAEMON.md) over a pool of
worker processes, with request coalescing, admission control +
per-client quotas, warm session sharding by content hash, and
graceful drain-on-shutdown.

Entry points:

* ``repro-pta daemon`` (CLI) → :func:`repro.daemon.server.run_daemon`;
* :class:`DaemonHandle` — run a daemon on a background thread inside
  the current process (tests, benchmarks, editors embedding the
  analysis);
* :class:`DaemonClient` — a blocking JSON-lines client.
"""

from __future__ import annotations

import asyncio
import threading

from repro.daemon.client import DaemonClient
from repro.daemon.server import Daemon, DaemonConfig, run_daemon

__all__ = [
    "Daemon",
    "DaemonClient",
    "DaemonConfig",
    "DaemonHandle",
    "run_daemon",
]


class DaemonHandle:
    """A daemon running on a background thread with its own event loop.

    ::

        handle = DaemonHandle(DaemonConfig(store_url=f"file:{root}"))
        host, port = handle.start()
        with DaemonClient(host, port) as client:
            client.request({"source": "...", "query": "labels"})
        handle.stop()

    ``stop`` performs the same graceful drain as SIGTERM.  The handle
    is also a context manager.
    """

    def __init__(self, config: DaemonConfig | None = None):
        self.daemon = Daemon(config)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._done = threading.Event()
        self._error: BaseException | None = None

    def start(self, timeout: float = 30.0) -> tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-daemon", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("daemon failed to start in time")
        if self._error is not None:
            raise RuntimeError("daemon failed to start") from self._error
        return self.daemon.host, self.daemon.port

    def _run(self) -> None:
        async def main() -> None:
            try:
                await self.daemon.start()
            except BaseException as exc:
                self._error = exc
                self._ready.set()
                raise
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self.daemon.serve_forever()

        try:
            asyncio.run(main())
        except BaseException as exc:  # surfaced by start()/stop()
            if self._error is None:
                self._error = exc
        finally:
            self._done.set()

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: drain, flush stores, stop workers."""
        loop = self._loop
        if loop is not None and not self._done.is_set():
            try:
                asyncio.run_coroutine_threadsafe(
                    self.daemon.shutdown(), loop
                ).result(timeout)
            except (RuntimeError, TimeoutError):
                pass
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "DaemonHandle":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
