"""The daemon's worker-process entry point.

Each worker owns one store handle (opened from the backend URL — file
and sqlite backends share one object space across workers, a memory
backend is worker-private but stays coherent because the front end
shards requests by content hash, so a given key always lands on the
same worker) and one LRU-bounded
:class:`~repro.service.commands.SessionCache` of warm query sessions.
Requests are answered with the exact
:func:`~repro.service.commands.handle_request` dispatch the stdin
serve loop uses, which is what keeps the two transports behaviorally
identical.

Telemetry (on by default): the worker installs a process-wide
:class:`~repro.obs.tracer.MetricsTracer` — counters, gauges, and
latency histograms accumulate for the life of the worker in bounded
memory, spans stay off — so the front end's ``metrics`` fan-out can
merge a live registry from every shard.  A request carrying a
``trace`` id runs under a fresh full tracer (the shared
``handle_request`` machinery), and the finished span tree ships back
through the result queue for the front end to graft under its
``daemon.worker`` span.  Journal events the request produced (update
tiers, slow work) ship the same way and are re-sequenced into the
daemon's journal.

The job protocol over the multiprocessing queues::

    job queue:    (job_id, request_dict)  |  None        (shutdown)
    result queue: (worker_id, job_id, response, info)
                  (worker_id, None, None, None)          (shutdown ack)

``info`` carries per-request facts the front end aggregates:
``analyzed`` (a store miss ran the full analysis — the coalescing
counter's ground truth), ``wall_s``, the worker's session count,
cumulative store traffic, plus ``trace`` (the captured trace document,
traced requests only) and ``events`` (journal events since the last
shipment).
"""

from __future__ import annotations

import time


def worker_main(
    worker_id: int,
    store_url: str,
    max_sessions: int,
    job_queue,
    result_queue,
    telemetry: bool = True,
) -> None:
    """Blocking worker loop: jobs in, responses out, until sentinel."""
    # Imports happen here (not at module top) so a spawn-context child
    # pays them once, and a fork-context child reuses the parent's.
    from repro import obs
    from repro.service.commands import SessionCache, handle_request
    from repro.service.store import ResultStore

    if telemetry:
        # Spans off, metrics on, memory bounded — safe for a worker
        # that lives for millions of requests.  Traced requests fold
        # their per-request snapshots back into this registry.
        obs.set_tracer(obs.MetricsTracer())
    else:
        # A fork-context child inherits whatever tracer the parent had
        # installed; telemetry-off workers must run the null tracer.
        obs.set_tracer(None)
    # Journal events inherited from the parent process (fork) predate
    # this worker — ship only what this worker emits.
    shipped_seq = obs.journal().next_seq

    store = ResultStore(store_url)
    sessions = SessionCache(max_sessions)
    try:
        while True:
            job = job_queue.get()
            if job is None:
                break
            job_id, request = job
            start = time.perf_counter()
            misses_before = store.stats.misses
            try:
                response = handle_request(request, store, sessions)
            except Exception as exc:  # never kill the worker on one request
                response = {
                    "ok": False,
                    "error": f"internal error: {type(exc).__name__}: {exc}",
                }
            info = {
                "analyzed": store.stats.misses > misses_before,
                "wall_s": time.perf_counter() - start,
                "sessions": len(sessions),
                "store": store.stats.as_dict(),
            }
            if telemetry:
                trace_id = response.get("trace_id")
                if trace_id is not None:
                    document = obs.traces().get(trace_id)
                    if document is not None:
                        info["trace"] = document
                events = obs.journal().since(shipped_seq)
                if events:
                    shipped_seq = events[-1]["seq"] + 1
                    info["events"] = events
            result_queue.put((worker_id, job_id, response, info))
    finally:
        # Graceful shutdown: flush pending store writes (sqlite WAL
        # checkpoints, tiered write-through) and release the backend
        # before acking so the parent knows the data is durable.
        try:
            store.flush()
            store.close()
        finally:
            result_queue.put((worker_id, None, None, None))
