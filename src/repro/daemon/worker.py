"""The daemon's worker-process entry point.

Each worker owns one store handle (opened from the backend URL — file
and sqlite backends share one object space across workers, a memory
backend is worker-private but stays coherent because the front end
shards requests by content hash, so a given key always lands on the
same worker) and one LRU-bounded
:class:`~repro.service.commands.SessionCache` of warm query sessions.
Requests are answered with the exact
:func:`~repro.service.commands.handle_request` dispatch the stdin
serve loop uses, which is what keeps the two transports behaviorally
identical.

The job protocol over the multiprocessing queues::

    job queue:    (job_id, request_dict)  |  None        (shutdown)
    result queue: (worker_id, job_id, response, info)
                  (worker_id, None, None, None)          (shutdown ack)

``info`` carries per-request facts the front end aggregates:
``analyzed`` (a store miss ran the full analysis — the coalescing
counter's ground truth), ``wall_s``, the worker's session count and
cumulative store traffic.
"""

from __future__ import annotations

import time


def worker_main(
    worker_id: int,
    store_url: str,
    max_sessions: int,
    job_queue,
    result_queue,
) -> None:
    """Blocking worker loop: jobs in, responses out, until sentinel."""
    # Imports happen here (not at module top) so a spawn-context child
    # pays them once, and a fork-context child reuses the parent's.
    from repro.service.commands import SessionCache, handle_request
    from repro.service.store import ResultStore

    store = ResultStore(store_url)
    sessions = SessionCache(max_sessions)
    try:
        while True:
            job = job_queue.get()
            if job is None:
                break
            job_id, request = job
            start = time.perf_counter()
            misses_before = store.stats.misses
            try:
                response = handle_request(request, store, sessions)
            except Exception as exc:  # never kill the worker on one request
                response = {
                    "ok": False,
                    "error": f"internal error: {type(exc).__name__}: {exc}",
                }
            info = {
                "analyzed": store.stats.misses > misses_before,
                "wall_s": time.perf_counter() - start,
                "sessions": len(sessions),
                "store": store.stats.as_dict(),
            }
            result_queue.put((worker_id, job_id, response, info))
    finally:
        # Graceful shutdown: flush pending store writes (sqlite WAL
        # checkpoints, tiered write-through) and release the backend
        # before acking so the parent knows the data is durable.
        try:
            store.flush()
            store.close()
        finally:
            result_queue.put((worker_id, None, None, None))
