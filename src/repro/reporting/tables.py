"""Plain-text renderers matching the layout of Tables 2-6 and the
`livc` study paragraph of Section 6."""

from __future__ import annotations

from repro.core.baselines import StrategyComparison
from repro.core.statistics import (
    PrecisionRow,
    SuiteSummary,
    Table2Row,
    Table3Row,
    Table4Row,
    Table5Row,
    Table6Row,
)


def _rule(widths: list[int]) -> str:
    return "+".join("-" * (w + 2) for w in widths)


def _format_table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_table2(rows: list[Table2Row]) -> str:
    body = [
        [
            r.benchmark,
            str(r.lines),
            str(r.simple_stmts),
            str(r.min_vars),
            str(r.max_vars),
            r.description,
        ]
        for r in rows
    ]
    return "Table 2: Characteristics of Benchmark Programs\n" + _format_table(
        ["Benchmark", "Lines", "SIMPLE stmts", "Min #var", "Max #var", "Description"],
        body,
    )


def render_table3(rows: list[Table3Row]) -> str:
    body = []
    for r in rows:
        body.append(
            [
                r.benchmark,
                str(r.one_definite),
                str(r.one_possible),
                str(r.two),
                str(r.three),
                str(r.four_plus),
                str(r.indirect_refs),
                str(r.scalar_replaceable),
                str(r.pairs_to_stack),
                str(r.pairs_to_heap),
                str(r.pairs_total),
                f"{r.average:.2f}",
            ]
        )
    note = (
        "(entries 'a/b' split the *x-form and x[i][j]-form references,"
        " as in the paper)"
    )
    return (
        "Table 3: Points-to Statistics for Indirect References\n"
        + _format_table(
            [
                "Benchmark",
                "1 D",
                "1 P",
                "2 P",
                "3 P",
                ">=4 P",
                "ind refs",
                "Scalar Rep",
                "To Stack",
                "To Heap",
                "Tot",
                "Avg",
            ],
            body,
        )
        + "\n"
        + note
    )


def render_table4(rows: list[Table4Row]) -> str:
    body = []
    for r in rows:
        body.append(
            [r.benchmark]
            + [str(r.from_counts[k]) for k in ("lo", "gl", "fp", "sy")]
            + [str(r.to_counts[k]) for k in ("lo", "gl", "fp", "sy")]
        )
    return (
        "Table 4: Categorization of Points-to Information Used by "
        "Indirect References\n"
        + _format_table(
            [
                "Benchmark",
                "From lo",
                "From gl",
                "From fp",
                "From sy",
                "To lo",
                "To gl",
                "To fp",
                "To sy",
            ],
            body,
        )
    )


def render_table5(rows: list[Table5Row]) -> str:
    body = [
        [
            r.benchmark,
            str(r.stack_to_stack),
            str(r.stack_to_heap),
            str(r.heap_to_heap),
            str(r.heap_to_stack),
            f"{r.average:.1f}",
            str(r.max_per_stmt),
        ]
        for r in rows
    ]
    return "Table 5: General Points-to Statistics\n" + _format_table(
        [
            "Benchmark",
            "Stack->Stack",
            "Stack->Heap",
            "Heap->Heap",
            "Heap->Stack",
            "Avg",
            "Max/stmt",
        ],
        body,
    )


def render_table6(rows: list[Table6Row]) -> str:
    body = [
        [
            r.benchmark,
            str(r.ig_nodes),
            str(r.call_sites),
            str(r.functions),
            str(r.recursive_nodes),
            str(r.approximate_nodes),
            f"{r.avg_per_call_site:.2f}",
            f"{r.avg_per_function:.2f}",
        ]
        for r in rows
    ]
    return "Table 6: Invocation Graph Statistics\n" + _format_table(
        ["Benchmark", "ig nodes", "call sites", "#fns", "R", "A", "Avgc", "Avgf"],
        body,
    )


def render_suite_summary(summary: SuiteSummary) -> str:
    lines = [
        "Section 6 headline figures (ours vs the paper's):",
        f"  average locations per indirect reference: "
        f"{summary.overall_average:.2f}   (paper: 1.13)",
        f"  indirect refs with a single definite target: "
        f"{summary.pct_definite_single:.1f}%   (paper: 28.80%)",
        f"  indirect refs replaceable by direct refs: "
        f"{summary.pct_scalar_replaceable:.1f}%   (paper: 19.39%)",
        f"  indirect refs with a single non-NULL target: "
        f"{summary.pct_single_target:.1f}%   (paper: 90.76%)",
        f"  points-to pairs with heap targets: "
        f"{summary.pct_heap_pairs:.1f}%   (paper: 27.92%)",
    ]
    return "\n".join(lines)


def render_livc_study(comparison: StrategyComparison) -> str:
    sites = sorted(comparison.precise_targets_per_site.items())
    per_site = ", ".join(f"site {s}: {n} fns" for s, n in sites)
    lines = [
        "Section 6 `livc` function-pointer study:",
        f"  precise algorithm:      {comparison.precise_nodes} invocation-graph "
        f"nodes ({per_site})   (paper: 203 nodes, 24 fns per site)",
        f"  all-functions naive:    {comparison.all_functions_nodes} nodes, "
        f"{comparison.all_functions_count} candidate functions per site   "
        f"(paper: 619 nodes, 82 fns)",
        f"  address-taken naive:    {comparison.address_taken_nodes} nodes, "
        f"{comparison.address_taken_count} candidate functions per site   "
        f"(paper: 589 nodes, 72 fns)",
    ]
    return "\n".join(lines)


def render_precision(row: PrecisionRow) -> str:
    """The precision dashboard (see
    :func:`repro.core.statistics.collect_precision`): per-function
    definite/possible ratios and invisible-variable counts, the
    invocation-graph approximation counters, and — when the run
    recorded provenance — the Figure 1 rule-classification counts and
    the derivation-depth profile."""
    body = [
        [
            fn.function,
            str(fn.definite),
            str(fn.possible),
            f"{100 * fn.definite_ratio:.1f}%",
            str(fn.invisible_vars),
        ]
        for fn in row.functions
    ]
    body.append(
        [
            "TOTAL",
            str(row.definite),
            str(row.possible),
            f"{100 * row.definite_ratio:.1f}%",
            str(row.invisible_vars),
        ]
    )
    table = _format_table(
        ["Function", "Definite", "Possible", "D ratio", "Invisible"],
        body,
    )
    lines = [
        f"Precision dashboard: {row.benchmark}",
        table,
        f"invocation graph: {row.approximate_nodes} approximate, "
        f"{row.recursive_nodes} recursive node(s)",
    ]
    if row.records is not None:
        classes = row.class_counts or {}
        lines.append(
            f"derivations: {row.records} records "
            f"(gen {classes.get('gen', 0)}, "
            f"transfer {classes.get('transfer', 0)}, "
            f"weaken {classes.get('weaken', 0)}, "
            f"kill {classes.get('kill', 0)})"
        )
        histogram = row.depth_histogram or {}
        depths = ", ".join(
            f"{depth}:{count}"
            for depth, count in sorted(
                (row.depth_counts or {}).items()
            )
        )
        lines.append(
            f"witness depth: mean {histogram.get('mean_s', 0):.2f}, "
            f"max {int(histogram.get('max_s') or 0)} "
            f"(depth:count {depths})"
        )
    return "\n".join(lines)


def render_batch_report(report) -> str:
    """Summary table of one ``repro-pta batch`` run (a
    :class:`~repro.service.batch.BatchReport`): per-file wall time and
    cache outcome, then the hit-rate/throughput footer."""
    body = []
    for row in report.rows:
        if row.get("error"):
            body.append(
                [row["name"], "ERROR", f"{row['wall_s'] * 1000:.1f}",
                 "-", "-", row["error"]]
            )
            continue
        body.append(
            [
                row["name"],
                "hit" if row["hit"] else "miss",
                f"{row['wall_s'] * 1000:.1f}",
                str(row["statements"]),
                str(row["ig_nodes"]),
                str(row["warnings"]),
            ]
        )
    table = _format_table(
        ["File", "Cache", "Wall (ms)", "SIMPLE stmts", "IG nodes", "Warnings"],
        body,
    )
    footer = (
        f"{len(report.rows)} files, {report.jobs} worker(s): "
        f"{report.hits} hit / {len(report.rows) - report.hits} miss "
        f"(hit rate {100 * report.hit_rate:.1f}%), "
        f"batch wall {report.wall_s:.3f}s, "
        f"sum of per-file wall {report.total_file_s:.3f}s"
    )
    return table + "\n" + footer
