"""Renderers for the paper's tables and figures."""

from repro.reporting.tables import (
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
    render_suite_summary,
    render_livc_study,
)

__all__ = [
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "render_table6",
    "render_suite_summary",
    "render_livc_study",
]
