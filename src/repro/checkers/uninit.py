"""Uninitialized-pointer-use checker.

The analysis initializes every visible pointer to NULL (the paper's
convention), so a pointer variable that is *never assigned* in its
function and still carries a NULL target where its value is consumed
(copied, passed to a call, returned) was used before initialization.
The syntactic never-assigned pre-filter (``UseSite.assigned``, which
also counts address-taking and parameters) keeps deliberate
``p = NULL``-then-check idioms out of scope; the points-to facts then
grade the finding: a sole ``(p, NULL, D)`` target is an ``error``,
NULL among other targets a ``warning`` (some path through a merged
context may have assigned it).
"""

from __future__ import annotations

from repro.core.pointsto import D

from repro.checkers.base import Checker, CheckContext, Finding, register
from repro.checkers.facts import USE_ARG, USE_RETURN

_VERBS = {
    USE_ARG: "passed to a call",
    USE_RETURN: "returned",
}


@register
class UninitPtrUse(Checker):
    id = "uninit-ptr-use"
    description = (
        "pointer variable used (copied, passed, or returned) before "
        "ever being assigned"
    )

    @classmethod
    def run(cls, ctx: CheckContext) -> list[Finding]:
        findings = []
        for site in ctx.facts.uses:
            if site.assigned:
                continue
            pts = ctx.pts_at(site.stmt)
            if pts is None:
                continue
            loc = ctx.resolve(site.name, site.func)
            if loc is None:
                continue
            targets = pts.targets_of(loc)
            null_pairs = [(t, d) for t, d in targets if t.is_null]
            if not null_pairs:
                continue
            definite = len(targets) == 1 and null_pairs[0][1] is D
            verb = _VERBS.get(site.kind, "copied")
            findings.append(
                Finding(
                    checker=cls.id,
                    message=(
                        f"'{site.name}' is {verb} but never assigned in "
                        f"'{site.func}' (still its implicit NULL "
                        f"initialization)"
                    ),
                    definite=definite,
                    func=site.func,
                    stmt=site.stmt,
                    line=site.line or None,
                    witness=ctx.witness_for(loc, null_pairs[0][0]),
                    extra={"use": site.kind},
                )
            )
        return findings
