"""Checker orchestration: selection, suppression, canonicalization.

``run_checkers`` is the single entry point used by the CLI ``check``
subcommand, the serve-loop ``{"cmd": "check"}`` verb, the benchmark,
and the fuzz gate.  It runs the selected checkers over a
:class:`~repro.checkers.base.CheckContext`, then post-processes the
findings so a live analysis and its decoded store artifact report the
same thing:

* statement labels are attached (from the program or the payload),
* live statement ids are rewritten to the payload's canonical ids
  (``canonical_ids=False`` keeps raw ids — the fuzz gate needs them to
  match the interpreter's), and
* ``// repro-ignore[checker-id]`` line suppressions from the source
  text are applied.

Each checker runs under an ``obs`` span with its own wall-time and
findings counter, inside one ``checkers.run`` parent span.
"""

from __future__ import annotations

import re

from repro import obs

from repro.checkers.base import (
    CHECKERS,
    CheckContext,
    Checker,
    Finding,
    register,
)
from repro.checkers.facts import collect_facts

#: Checker id of the unused-suppression notes (they ride the registry
#: so SARIF rule metadata and ``--checkers`` selection apply to them).
UNUSED_SUPPRESSION = "unused-suppression"


class CheckerError(ValueError):
    """Unknown checker id or unusable input."""


#: ``// repro-ignore`` suppresses every checker on its line;
#: ``// repro-ignore[a, b]`` only the listed checker ids.
_SUPPRESS_RE = re.compile(r"//\s*repro-ignore(?:\[([^\]]*)\])?")


def parse_suppressions(source: str) -> dict[int, set[str] | None]:
    """line number -> suppressed checker ids (None: all checkers)."""
    out: dict[int, set[str] | None] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        ids = match.group(1)
        if ids is None:
            out[lineno] = None
        else:
            out[lineno] = {part.strip() for part in ids.split(",")
                           if part.strip()}
    return out


def select_checkers(names=None) -> list:
    """Checker classes to run, in deterministic (id) order."""
    if names is None:
        return [CHECKERS[cid] for cid in sorted(CHECKERS)]
    unknown = sorted(set(names) - set(CHECKERS))
    if unknown:
        raise CheckerError(
            f"unknown checker(s) {', '.join(unknown)} "
            f"(known: {', '.join(sorted(CHECKERS))})"
        )
    return [CHECKERS[cid] for cid in sorted(set(names))]


def run_checkers(
    analysis,
    source: str | None = None,
    checkers=None,
    canonical_ids: bool = True,
    facts=None,
    unused_suppressions: bool = True,
) -> list[Finding]:
    """Run checkers over a live or decoded analysis.

    ``facts`` defaults to the payload's decoded section on a cached
    result and to a fresh :func:`collect_facts` extraction on a live
    one.  ``source`` enables ``// repro-ignore`` suppressions (and,
    unless ``unused_suppressions=False``, notes for suppressions that
    suppress nothing).
    """
    if facts is None:
        facts = getattr(analysis, "checkfacts", None)
        if facts is None:
            if getattr(analysis, "program", None) is None:
                raise CheckerError(
                    "decoded analysis has no checkfacts section and no "
                    "program to extract them from"
                )
            facts = collect_facts(analysis)

    ctx = CheckContext(analysis, facts)
    findings: list[Finding] = []
    with obs.span("checkers.run"):
        for checker in select_checkers(checkers):
            with obs.timed("checkers.checker", checker=checker.id):
                found = checker.run(ctx)
            obs.count(f"checkers.findings.{checker.id}", len(found))
            findings.extend(found)

    _attach_labels(analysis, findings)
    if canonical_ids and getattr(analysis, "program", None) is not None:
        _canonicalize(analysis.program, findings)
    if source is not None:
        selected = (
            None if checkers is None
            else {checker.id for checker in select_checkers(checkers)}
        )
        return finalize_findings(
            findings,
            source,
            checkers=selected,
            unused_suppressions=unused_suppressions,
        )
    findings.sort(key=lambda f: f.sort_key())
    return findings


def _attach_labels(analysis, findings: list[Finding]) -> None:
    """Source labels of each finding's statement (the paper's
    program-point vocabulary), in whichever id space is current."""
    program = getattr(analysis, "program", None)
    labels = program.labels if program is not None else analysis.labels
    by_stmt: dict[int, list[str]] = {}
    for label, (_func, stmt_id) in labels.items():
        by_stmt.setdefault(stmt_id, []).append(label)
    for finding in findings:
        if finding.stmt is not None:
            finding.labels = tuple(sorted(by_stmt.get(finding.stmt, ())))


def _canonicalize(program, findings: list[Finding]) -> None:
    """Rewrite live statement ids to the store payload's canonical
    numbering so fresh and cached runs are byte-identical."""
    # Lazy import: serialize imports this package for the checkfacts
    # payload section, so the dependency must stay one-way at load.
    from repro.service.serialize import _canonical_stmt_ids

    mapping = _canonical_stmt_ids(program)
    for finding in findings:
        if finding.stmt is not None:
            finding.stmt = mapping.get(finding.stmt)
        for step in finding.witness:
            if step.get("stmt") is not None:
                step["stmt"] = mapping.get(step["stmt"])


def finalize_findings(
    findings: list[Finding],
    source: str,
    checkers: set[str] | None = None,
    unused_suppressions: bool = True,
) -> list[Finding]:
    """Source-sensitive post-processing shared by :func:`run_checkers`
    and the differential engine's merge path: apply ``// repro-ignore``
    suppressions keyed on *this* text's line numbering, emit notes for
    suppressions that suppressed nothing, and sort.

    ``checkers`` is the set of selected checker ids (None: all) — the
    notes only appear when :data:`UNUSED_SUPPRESSION` is selected.
    Running this exactly once, on the final merged finding list,
    is what keeps diff-mode output byte-identical to a cold check.
    """
    suppressions = parse_suppressions(source)
    kept, used = _apply_suppressions(findings, suppressions)
    if (
        unused_suppressions
        and (checkers is None or UNUSED_SUPPRESSION in checkers)
    ):
        kept.extend(
            _unused_suppression_notes(suppressions, used, source)
        )
    kept.sort(key=lambda f: f.sort_key())
    return kept


def _apply_suppressions(
    findings: list[Finding],
    suppressions: dict[int, set[str] | None],
) -> tuple[list[Finding], set[int]]:
    """(kept findings, suppression lines that suppressed something)."""
    if not suppressions:
        return list(findings), set()
    kept = []
    used: set[int] = set()
    for finding in findings:
        if finding.line is not None and finding.line in suppressions:
            ids = suppressions[finding.line]
            if ids is None or finding.checker in ids:
                obs.count("checkers.suppressed")
                used.add(finding.line)
                continue
        kept.append(finding)
    return kept, used


@register
class UnusedSuppressionChecker(Checker):
    """Pseudo-checker owning the unused-suppression note id.

    The notes are produced by :func:`finalize_findings` (they need the
    post-suppression view), not by :meth:`run`; registering the id
    anyway gives them SARIF rule metadata and ``--checkers`` selection
    like any detector."""

    id = UNUSED_SUPPRESSION
    description = (
        "a // repro-ignore comment on this line suppresses no finding"
    )

    @classmethod
    def run(cls, ctx) -> list[Finding]:
        return []


def _unused_suppression_notes(
    suppressions: dict[int, set[str] | None],
    used: set[int],
    source: str,
) -> list[Finding]:
    """A warning per suppression comment that suppressed nothing.

    A note is itself suppressible, but only by naming the
    :data:`UNUSED_SUPPRESSION` id explicitly — if a bare
    ``// repro-ignore`` swallowed its own note, a stale blanket ignore
    could never be reported.  Messages carry the suppressed id list but
    no line number, so the note's fingerprint survives edits that only
    shift it (the finding's ``line`` still points at the comment).
    """
    notes = []
    funcs = _functions_by_line(source)
    for lineno in sorted(set(suppressions) - used):
        ids = suppressions[lineno]
        if ids is not None and UNUSED_SUPPRESSION in ids:
            continue
        if ids is None:
            message = (
                "suppression '// repro-ignore' matches no finding"
            )
            extra = {}
        else:
            listed = ", ".join(sorted(ids)) or "(empty id list)"
            message = (
                f"suppression '// repro-ignore[{listed}]' "
                f"matches no finding"
            )
            extra = {"ids": sorted(ids)}
        obs.count("checkers.unused_suppressions")
        notes.append(
            Finding(
                checker=UNUSED_SUPPRESSION,
                message=message,
                definite=False,
                func=funcs.get(lineno),
                line=lineno,
                extra=extra,
            )
        )
    return notes


def _functions_by_line(source: str) -> dict[int, str]:
    """line number -> enclosing function name, for attributing notes
    (best-effort: an unchunkable text attributes nothing)."""
    from repro.simple.patching import ChunkError, split_chunks

    try:
        chunks = split_chunks(source)
    except ChunkError:
        return {}
    out: dict[int, str] = {}
    for chunk in chunks:
        if chunk.kind != "function" or chunk.name is None:
            continue
        first = source.count("\n", 0, chunk.start) + 1
        last = first + chunk.text.count("\n")
        for lineno in range(first, last + 1):
            out[lineno] = chunk.name
    return out
