"""Dangling-stack-return checker.

Two complementary detection angles, both specific to this paper's
stack abstraction:

* **Return sites** — at a ``return p`` whose function returns a
  pointer, the points-to set flowing into the return is inspected: any
  target that is a local or parameter *of the returning function
  itself* is about to have its frame popped.  ``return &x`` is the
  same bug without the indirection and is reported unconditionally.
* **Unmap warnings** — Figure 3's unmap step already detects the
  escape on the *caller* side: when a callee-local target cannot be
  rewritten into the caller's name space (no invisible/symbolic name
  maps back to it), the analysis drops the relationship and records a
  ``pointer to local ... escapes its frame`` warning.  Those warnings
  are surfaced as findings so the caller-side evidence is not lost
  (the relationship itself is gone from the sets by then).
"""

from __future__ import annotations

import re

from repro.core.locations import LocKind
from repro.core.pointsto import D

from repro.checkers.base import Checker, CheckContext, Finding, register

_STACK_KINDS = (LocKind.LOCAL, LocKind.PARAM)

_ESCAPE_RE = re.compile(
    r"pointer to local '([^']+)' of '([^']+)' escapes\s+its frame"
)


@register
class DanglingStackReturn(Checker):
    id = "dangling-stack-return"
    description = (
        "function returns (or leaks through unmap) a pointer to one of "
        "its own locals"
    )

    @classmethod
    def run(cls, ctx: CheckContext) -> list[Finding]:
        findings = []
        for site in ctx.facts.returns:
            if not site.ptr:
                continue
            if site.addr is not None:
                loc = ctx.resolve(site.addr, site.func)
                if loc is not None and loc.kind in _STACK_KINDS and \
                        loc.func == site.func:
                    findings.append(
                        Finding(
                            checker=cls.id,
                            message=(
                                f"'{site.func}' returns the address of "
                                f"its own local '{site.addr}'"
                            ),
                            definite=True,
                            func=site.func,
                            stmt=site.stmt,
                            line=site.line or None,
                            extra={"local": str(loc)},
                        )
                    )
                continue
            if site.name is None:
                continue
            pts = ctx.pts_at(site.stmt)
            if pts is None:
                continue
            loc = ctx.resolve(site.name, site.func)
            if loc is None:
                continue
            for tgt, d in pts.targets_of(loc):
                if tgt.kind not in _STACK_KINDS or tgt.func != site.func:
                    continue
                definite = d is D
                findings.append(
                    Finding(
                        checker=cls.id,
                        message=(
                            f"'{site.func}' returns '{site.name}', which "
                            f"{'points' if definite else 'may point'} to "
                            f"its own local '{tgt}'"
                        ),
                        definite=definite,
                        func=site.func,
                        stmt=site.stmt,
                        line=site.line or None,
                        witness=ctx.witness_for(loc, tgt),
                        extra={"local": str(tgt)},
                    )
                )
        findings.extend(cls._from_unmap_warnings(ctx))
        return findings

    @classmethod
    def _from_unmap_warnings(cls, ctx: CheckContext) -> list[Finding]:
        findings = []
        seen = set()
        for warning in ctx.analysis.warnings:
            match = _ESCAPE_RE.search(warning)
            if match is None:
                continue
            local, func = match.groups()
            if (local, func) in seen:
                continue
            seen.add((local, func))
            findings.append(
                Finding(
                    checker=cls.id,
                    message=(
                        f"pointer to local '{local}' of '{func}' escapes "
                        f"the function's frame across a call boundary "
                        f"(relationship dropped at unmap)"
                    ),
                    definite=False,
                    func=func,
                    extra={"local": local, "source": "unmap"},
                )
            )
        return findings
