"""Differential checking: finding baselines, fingerprints, and
dirty-set-restricted re-checks.

The checker framework re-derives every finding from scratch on each
run, even though the incremental layer (:mod:`repro.core.incremental`)
can already prove most of a program untouched by an edit.  This module
lifts that reuse one level, from points-to facts to *findings*:

* :func:`finding_fingerprint` — an edit-stable identity for one
  finding: a hash over the checker id, enclosing function, message,
  definiteness, labels, extra payload, and a line-number-free
  normalization of the witness.  Statement ids and line numbers are
  deliberately excluded, so a finding keeps its fingerprint when an
  unrelated edit shifts the whole function down the file.
* :func:`build_baseline` — serializes a check run as a JSON record:
  per-function raw findings plus the *replay skeleton* that proves
  them still valid (chunk hash, points-to row fingerprint, resolved
  call closure, canonical statement-id span, globals fingerprint).
  Records are content-addressed (``base-`` keys, see
  :meth:`repro.service.store.ResultStore.baseline_key`) and live
  beside the analysis artifact on any store backend.
* :func:`check_diff` — the engine: analyze the new text through the
  incremental update ladder, split functions into *clean* (replay
  their baseline findings, with statement ids and lines remapped to
  the new text's numbering) and *dirty* (re-extract
  :class:`~repro.checkers.facts.CheckFacts` and re-run detectors for
  just those), then finalize the merged list against the new source
  and classify every finding as ``new`` / ``unchanged`` (and report
  baseline findings that disappeared as ``absent``).

A function is *replay-clean* only when all of the following hold, old
vs new: its exact chunk text (so in-function lines, comments and
suppressions are unchanged), its points-to rows (serialized triple
sets at each statement, keyed by position), the membership of its
resolved-call closure *and* the chunk/rows of every closure member
(callee bodies feed the read/write folding and the heap-inertness
verdicts the leak checker consumes), and the globals fingerprint.
Unmap-derived findings (``extra["source"] == "unmap"``) are never
replayed — they derive from the analysis's global warning list, which
the update ladder reproduces byte-identically, so they are recomputed
fresh on every check.  The test suite asserts diff-mode output is
byte-identical to a cold full check across the edit-fuzz corpus.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field

from repro import obs

from repro.checkers.base import Finding
from repro.checkers.facts import CheckFacts, collect_facts
from repro.checkers.runner import (
    CheckerError,
    finalize_findings,
    run_checkers,
    select_checkers,
)

#: Schema version of baseline records; participates in the ``base-``
#: key derivation, so a schema change is a clean miss.
BASELINE_VERSION = 1

#: Witness step keys dropped by the fingerprint normalization: record
#: ids, statement ids, and derivation-graph bookkeeping all renumber
#: under unrelated edits.
_VOLATILE_WITNESS_KEYS = frozenset({"id", "stmt", "path", "other_parents"})

#: Extra-payload keys holding absolute line numbers (the interference
#: checker records its partner statement and loop header).  Excluded
#: from fingerprints and shifted during replay, like ``line`` itself.
_LINE_EXTRA_KEYS = ("other_line", "loop_line")


class DiffError(CheckerError):
    """Unusable differential-check request (no baseline source)."""


# ---------------------------------------------------------------------------
# Finding fingerprints
# ---------------------------------------------------------------------------


def normalize_witness(witness: list[dict]) -> list[dict]:
    """Witness steps with their position-dependent keys dropped."""
    return [
        {
            key: value
            for key, value in step.items()
            if key not in _VOLATILE_WITNESS_KEYS
        }
        for step in witness
    ]


def finding_fingerprint(finding) -> str:
    """The edit-stable identity of one finding (hex digest).

    Accepts a :class:`~repro.checkers.base.Finding` or its
    ``as_dict()`` form.  Excludes ``stmt`` and ``line`` (both renumber
    under unrelated edits); identical findings repeated in one
    function share a fingerprint, which classification handles as a
    multiset.
    """
    from repro.service.serialize import canonical_json

    record = finding.as_dict() if isinstance(finding, Finding) else finding
    extra = {
        key: value
        for key, value in (record.get("extra") or {}).items()
        if key not in _LINE_EXTRA_KEYS
    }
    body = {
        "checker": record.get("checker"),
        "func": record.get("func"),
        "message": record.get("message"),
        "definite": bool(record.get("definite")),
        "labels": sorted(record.get("labels") or ()),
        "extra": extra,
        "witness": normalize_witness(record.get("witness") or []),
    }
    return hashlib.sha256(canonical_json(body)).hexdigest()


def _finding_from_dict(record: dict) -> Finding:
    return Finding(
        checker=record["checker"],
        message=record["message"],
        definite=bool(record["definite"]),
        func=record.get("func"),
        stmt=record.get("stmt"),
        line=record.get("line"),
        labels=tuple(record.get("labels") or ()),
        witness=list(record.get("witness") or []),
        extra=dict(record.get("extra") or {}),
    )


def _is_unmap(record) -> bool:
    extra = record.extra if isinstance(record, Finding) else (
        record.get("extra") or {}
    )
    return extra.get("source") == "unmap"


# ---------------------------------------------------------------------------
# Replay state: what proves a baseline finding still valid
# ---------------------------------------------------------------------------


def _chunk_map(source: str) -> dict[str, tuple[str, int]] | None:
    """function -> (chunk sha256, 1-based line of the chunk's start),
    or None when the text cannot be chunked (or defines a function
    twice, which would make the mapping ambiguous)."""
    from repro.simple.patching import ChunkError, split_chunks

    try:
        chunks = split_chunks(source)
    except ChunkError:
        return None
    out: dict[str, tuple[str, int]] = {}
    for chunk in chunks:
        if chunk.kind != "function" or chunk.name is None:
            continue
        if chunk.name in out:
            return None
        digest = hashlib.sha256(chunk.text.encode()).hexdigest()
        out[chunk.name] = (digest, source.count("\n", 0, chunk.start) + 1)
    return out


def _stmt_spans(
    analysis, need_pairs: set[str] | None = None
) -> dict[str, tuple[int, int, list]]:
    """function -> (canonical base id, statement count, ordered
    (ordinal, query id) pairs) where *query id* is whatever
    ``analysis.at_stmt`` is keyed by — live ids on a fresh analysis,
    canonical ids on a decoded artifact.  Canonical ids are contiguous
    per function (serialize numbers functions in sorted order,
    statements in traversal order), which is what makes the ordinal
    remapping below well-defined.  When ``need_pairs`` is given, the
    pair lists are only materialized for those functions (the rest get
    ``None``) — base and count are always computed."""
    program = getattr(analysis, "program", None)
    spans: dict[str, tuple[int, int, list]] = {}
    if program is not None:
        # One pass mirroring serialize._canonical_stmt_ids: global
        # initializers claim ids 1..G, then functions in sorted order,
        # statements in traversal order — so within a function the
        # ordinal is simply the traversal index.
        from repro.simple.ir import iter_stmts

        offset = 0
        seen: set[int] = set()
        for stmt in iter_stmts(program.global_init):
            if stmt.stmt_id not in seen:
                seen.add(stmt.stmt_id)
                offset += 1
        for name in sorted(program.functions):
            keep = need_pairs is None or name in need_pairs
            pairs: list | None = [] if keep else None
            count = 0
            for stmt in program.functions[name].iter_stmts():
                if stmt.stmt_id not in seen:
                    seen.add(stmt.stmt_id)
                    if keep:
                        pairs.append((count, stmt.stmt_id))
                    count += 1
            if not count:
                spans[name] = (0, 0, [] if keep else None)
                continue
            spans[name] = (offset + 1, count, pairs)
            offset += count
        return spans
    by_func: dict[str, list[int]] = {}
    for stmt_id, func in analysis._stmt_func.items():
        by_func.setdefault(func, []).append(stmt_id)
    for name in analysis.functions:
        ids = sorted(by_func.get(name, ()))
        if not ids:
            spans[name] = (0, 0, [])
            continue
        spans[name] = (
            ids[0], len(ids), [(cid - ids[0], cid) for cid in ids]
        )
    return spans


def _pts_digest(pts, strs: dict | None = None) -> bytes:
    """Canonical digest of one points-to set: sorted, stringly rows,
    so live bitset and decoded relational representations agree.
    ``strs`` interns the rendered form of locations and definiteness
    marks (both repeat across nearly every row of one analysis)."""
    digest = hashlib.sha256()
    if strs is None:
        rows = sorted(
            f"{src}\x02{tgt}\x02{definiteness}"
            for src, tgt, definiteness in pts.triples()
        )
    else:
        get = strs.get
        rows = []
        for src, tgt, definiteness in pts.triples():
            s = get(src)
            if s is None:
                s = strs[src] = f"{src}"
            t = get(tgt)
            if t is None:
                t = strs[tgt] = f"{tgt}"
            d = get(definiteness)
            if d is None:
                d = strs[definiteness] = f"{definiteness}"
            rows.append(f"{s}\x02{t}\x02{d}")
        rows.sort()
    for row in rows:
        digest.update(b"\x00")
        digest.update(row.encode())
    return digest.digest()


def _func_pairs(program, name: str) -> list:
    """(ordinal, live stmt id) pairs for one function — the ordinal is
    the traversal index, matching :func:`_stmt_spans`."""
    seen: set[int] = set()
    pairs: list = []
    for stmt in program.functions[name].iter_stmts():
        if stmt.stmt_id not in seen:
            seen.add(stmt.stmt_id)
            pairs.append((len(pairs), stmt.stmt_id))
    return pairs


def _rows_fingerprint(analysis, pairs: list, cache: dict | None = None) -> str:
    """Hash of the points-to rows at each statement, keyed by ordinal
    position so live and decoded id spaces hash identically.

    Per-statement digests are folded into the function hash, which
    lets consecutive statements sharing a points-to set reuse one
    digest: ``cache`` memoizes by the bitset core's row dict — first
    by object identity (propagation aliases unchanged frames), then by
    its ``(src, defs, poss)`` integer content (ids are stable within
    one analysis, whose sets all share the active location table).
    Decoded analyses lack the bitset internals and hash every set, but
    produce identical digests for identical rows.
    """
    digest = hashlib.sha256()
    if cache is None:
        cache = {}
    for ordinal, query_id in pairs:
        digest.update(b"\x01%d" % ordinal)
        pts = analysis.at_stmt(query_id)
        if pts is None:
            digest.update(b"\x00-")
            continue
        part = key = None
        src_map = getattr(pts, "_src", None)
        if src_map is not None:
            entry = cache.get(id(src_map))
            if entry is not None and entry[0] is src_map:
                part = entry[1]
            else:
                key = frozenset(src_map.items())
                part = cache.get(key)
        if part is None:
            part = _pts_digest(pts, cache.setdefault("__strs__", {}))
            if key is not None:
                cache[key] = part
        if src_map is not None:
            cache[id(src_map)] = (src_map, part)
        digest.update(part)
    return digest.hexdigest()


def _resolved_deps(analysis) -> dict[str, set[str]] | None:
    """function -> possible analyzed callees, over-approximated.

    On a live analysis: direct call edges, plus — for any function
    containing an indirect call — every address-taken function.  That
    is a superset of whatever the invocation graph actually resolved
    (an indirect call can only reach an address-taken function), and
    unlike a walk of the context-sensitive IG it costs one static scan
    instead of a traversal of every invocation path.  On a decoded
    artifact the scan inputs are gone, so the skeleton's static edges
    are merged with the decoded IG's resolved edges; the two
    definitions can disagree, which at worst costs replay (a closure
    mismatch marks the function dirty), never correctness.  None when
    no dependency data is available (everything must then re-check).
    """
    deps: dict[str, set[str]] = {}
    program = getattr(analysis, "program", None)
    if program is not None:
        from repro.core.funcptr import address_taken_functions
        from repro.core.slices import _scan_function

        taken: list[str] | None = None
        for func, fn in program.functions.items():
            scan = _scan_function(fn, program)
            callees = set(scan.callees)
            if scan.has_indirect:
                if taken is None:
                    taken = sorted(address_taken_functions(program))
                callees.update(taken)
            deps[func] = callees
        return deps
    incremental = getattr(analysis, "incremental", None) or {}
    static = incremental.get("deps")
    if static is None:
        return None
    for func, callees in static.items():
        deps.setdefault(func, set()).update(callees)
    ig = getattr(analysis, "ig", None)
    root = getattr(ig, "root", None)
    if root is not None:
        stack, seen = [root], set()
        seen_add, stack_extend = seen.add, stack.extend
        while stack:
            node = stack.pop()
            nid = id(node)
            if nid in seen:
                continue
            seen_add(nid)
            bucket = deps.setdefault(node.func, set())
            for callees in node.children.values():
                children = callees.values()
                bucket.update(child.func for child in children)
                stack_extend(children)
    return deps


def _closure(deps: dict[str, set[str]], func: str) -> list[str]:
    members = {func}
    stack = [func]
    while stack:
        for callee in deps.get(stack.pop(), ()):
            if callee not in members:
                members.add(callee)
                stack.append(callee)
    return sorted(members)


def _program_state(
    analysis,
    source: str,
    baseline: dict | None = None,
    rows_unchanged: set[str] | None = None,
) -> dict:
    """The replay skeleton of one analyzed source: globals fingerprint
    plus per-function chunk/rows/closure/span facts.

    ``rows_unchanged`` names functions whose points-to rows are already
    proven byte-identical to ``baseline``'s (the update ladder's
    equivalence guarantee covers every function outside its dirty
    set).  Their rows fingerprints are copied from the baseline record
    instead of re-hashed — that hash dominates the warm diff path —
    guarded by chunk-hash and statement-count equality so a mismatched
    baseline degrades to a fresh hash, never a wrong one.
    """
    program = getattr(analysis, "program", None)
    if program is not None:
        from repro.core.incremental import globals_fingerprint

        functions = sorted(program.functions)
        globals_fp = globals_fingerprint(program)
    else:
        functions = sorted(analysis.functions)
        incremental = getattr(analysis, "incremental", None) or {}
        globals_fp = incremental.get("globals")
    chunks = _chunk_map(source)
    deps = _resolved_deps(analysis)
    closures = {
        func: _closure(deps, func) if deps is not None else None
        for func in functions
    }
    base_funcs = (baseline or {}).get("functions", {})
    defined = set(functions)

    def _chunk_dirty(func: str) -> bool:
        entry = base_funcs.get(func)
        chunk = chunks.get(func) if chunks is not None else None
        return (
            entry is None
            or chunk is None
            or entry.get("chunk") != chunk[0]
        )

    # Functions _plan_replay will reject no matter what their rows
    # hash to — own chunk edited, closure membership changed, or a
    # closure member's chunk edited — get ``rows: None`` instead of a
    # hash.  None never compares clean, and a later diff that needs
    # the real fingerprint falls through to hashing it fresh.
    skip: set[str] = set()
    if base_funcs:
        for func in functions:
            closure = closures[func]
            entry = base_funcs.get(func)
            if (
                _chunk_dirty(func)
                or closure is None
                or entry.get("closure") != closure
                or any(
                    member != func
                    and member in defined
                    and _chunk_dirty(member)
                    for member in closure
                )
            ):
                skip.add(func)

    need_pairs = None
    if program is not None:
        # Only functions whose fingerprints will actually be re-hashed
        # need their statement lists; the count guard below can still
        # force a stray one through _func_pairs.
        need_pairs = set()
        for func in functions:
            if func in skip:
                continue
            if (
                rows_unchanged is not None
                and func in rows_unchanged
                and not _chunk_dirty(func)
            ):
                continue
            need_pairs.add(func)
    spans = _stmt_spans(analysis, need_pairs)
    pts_cache: dict = {}
    state: dict[str, dict] = {}
    for func in functions:
        base, count, pairs = spans.get(func, (0, 0, []))
        chunk = chunks.get(func) if chunks is not None else None
        rows = None
        if (
            rows_unchanged is not None
            and func in rows_unchanged
            and not _chunk_dirty(func)
        ):
            entry = base_funcs.get(func)
            if entry.get("count") == count:
                rows = entry.get("rows")
        if rows is None and func not in skip:
            if pairs is None:
                pairs = _func_pairs(program, func)
            rows = _rows_fingerprint(analysis, pairs, pts_cache)
        state[func] = {
            "chunk": chunk[0] if chunk else None,
            "chunk_line": chunk[1] if chunk else None,
            "base": base,
            "count": count,
            "rows": rows,
            "closure": closures[func],
        }
    return {"globals": globals_fp, "functions": state}


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------


def build_baseline(
    analysis,
    source: str,
    checkers=None,
    unused_suppressions: bool = True,
) -> dict:
    """Serialize one check run as a baseline record.

    ``functions[f]["findings"]`` holds the *raw* (pre-suppression)
    findings so a later diff can re-apply suppressions against the
    edited text's line numbering; ``reported`` pairs each
    post-suppression finding with its fingerprint for the
    new/unchanged/absent classification.
    """
    raw = run_checkers(analysis, source=None, checkers=checkers)
    state = _program_state(analysis, source)
    per_func: dict[str, list] = {func: [] for func in state["functions"]}
    for finding in raw:
        if _is_unmap(finding):
            continue
        if finding.func in per_func:
            per_func[finding.func].append(finding.as_dict())
    selected = (
        None if checkers is None
        else {checker.id for checker in select_checkers(checkers)}
    )
    reported = finalize_findings(
        list(raw), source,
        checkers=selected, unused_suppressions=unused_suppressions,
    )
    return {
        "baseline_version": BASELINE_VERSION,
        "globals": state["globals"],
        "checkers": sorted(selected) if selected is not None else None,
        "unused_suppressions": bool(unused_suppressions),
        "functions": {
            func: dict(entry, findings=per_func[func])
            for func, entry in state["functions"].items()
        },
        "reported": [
            [finding_fingerprint(finding), finding.as_dict()]
            for finding in reported
        ],
    }


def _plan_replay(baseline: dict, state: dict) -> tuple[set[str], set[str]]:
    """(clean, dirty) function sets for one baseline/new-state pair."""
    base_funcs = baseline.get("functions", {})
    new_funcs = state["functions"]
    if (
        baseline.get("baseline_version") != BASELINE_VERSION
        or baseline.get("globals") is None
        or state["globals"] is None
        or baseline["globals"] != state["globals"]
    ):
        return set(), set(new_funcs)

    def self_clean(func: str) -> bool:
        base = base_funcs.get(func)
        new = new_funcs.get(func)
        if base is None or new is None:
            return False
        return (
            base.get("chunk") is not None
            and base.get("chunk") == new.get("chunk")
            and base.get("rows") is not None
            and base.get("rows") == new.get("rows")
            and base.get("count") == new.get("count")
        )

    clean: set[str] = set()
    for func, new in new_funcs.items():
        base = base_funcs.get(func)
        if base is None or not self_clean(func):
            continue
        closure = new.get("closure")
        if closure is None or base.get("closure") != closure:
            continue
        # Closure members defined in the program must themselves be
        # unchanged (their bodies feed read/write folding and heap
        # inertness); external names have fixed modeled effects.
        if any(
            member in new_funcs and not self_clean(member)
            for member in closure
            if member != func
        ):
            continue
        # Witness steps can reference statements in other functions;
        # diff runs are provenance-off so this only guards baselines
        # built from witness-carrying runs.
        if any(rec.get("witness") for rec in base.get("findings", ())):
            continue
        clean.add(func)
    return clean, set(new_funcs) - clean


def _replay_findings(base_entry: dict, new_entry: dict) -> list[Finding]:
    """Revive one clean function's baseline findings, remapping
    statement ids and lines into the new text's numbering (canonical
    ids are contiguous per function, so a base-id delta moves the
    whole span; identical chunk text makes the line delta exact)."""
    stmt_delta = new_entry["base"] - base_entry["base"]
    line_delta = 0
    if (
        base_entry.get("chunk_line") is not None
        and new_entry.get("chunk_line") is not None
    ):
        line_delta = new_entry["chunk_line"] - base_entry["chunk_line"]
    revived = []
    for record in base_entry.get("findings", ()):
        finding = _finding_from_dict(record)
        if finding.stmt is not None:
            finding.stmt += stmt_delta
        if finding.line is not None:
            finding.line += line_delta
        for key in _LINE_EXTRA_KEYS:
            if isinstance(finding.extra.get(key), int):
                finding.extra[key] += line_delta
        revived.append(finding)
    return revived


def _facts_for(analysis, funcs: set[str]) -> CheckFacts:
    """Checker facts restricted to ``funcs`` — extracted fresh on a
    live analysis, filtered from the payload section on a decoded one."""
    program = getattr(analysis, "program", None)
    if program is not None:
        return collect_facts(analysis, funcs=funcs)
    full = analysis.checkfacts
    facts = CheckFacts()
    facts.derefs = [site for site in full.derefs if site.func in funcs]
    facts.uses = [site for site in full.uses if site.func in funcs]
    facts.returns = [site for site in full.returns if site.func in funcs]
    facts.allocs = [site for site in full.allocs if site.func in funcs]
    facts.loops = [site for site in full.loops if site.func in funcs]
    facts.lines = dict(full.lines)
    facts.heap_alive = {
        func: alive
        for func, alive in full.heap_alive.items()
        if func in funcs
    }
    return facts


def _classify(
    findings: list[Finding], reported: list
) -> tuple[list[str], list[dict]]:
    """Per-finding status vs the baseline's reported fingerprints,
    plus the baseline findings no longer reported (multiset match)."""
    remaining = Counter(fp for fp, _ in reported)
    statuses = []
    for finding in findings:
        fp = finding_fingerprint(finding)
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            statuses.append("unchanged")
        else:
            statuses.append("new")
    absent = []
    for fp, record in reported:
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            absent.append(record)
    return statuses, absent


def _ig_call_profile(ig) -> dict[str, Counter]:
    """caller -> multiset of ``(call_site, callee)`` invocations,
    aggregated over every invocation context of the caller.  Two
    analyses invoke a function with the same input merge exactly when
    the relevant profiles agree, so comparing profiles detects every
    call-behavior change — including indirect call-sites re-bound by a
    facts change in a function whose own text never moved."""
    profile: dict[str, Counter] = {}
    for node in ig.root.walk():
        counts = profile.setdefault(node.func, Counter())
        for site, children in node.children.items():
            for child in children.values():
                counts[(site, child.func)] += 1
    return profile


def _callee_closure(
    seeds: set[str], *profiles: dict[str, Counter]
) -> set[str]:
    """``seeds`` plus everything transitively callable from them
    through any of the given call profiles."""
    closure = set(seeds)
    worklist = list(seeds)
    while worklist:
        func = worklist.pop()
        for profile in profiles:
            for _, callee in profile.get(func, ()):
                if callee not in closure:
                    closure.add(callee)
                    worklist.append(callee)
    return closure


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


@dataclass
class DiffCheckReport:
    """What one differential check computed and how it got there."""

    #: Final merged findings (identical to a cold check of the new
    #: text), with ``statuses[i]`` classifying ``findings[i]``.
    findings: list[Finding] = field(default_factory=list)
    statuses: list[str] = field(default_factory=list)
    #: Baseline findings no longer reported ("fixed"), as dicts.
    absent: list[dict] = field(default_factory=list)
    #: Analysis-reuse tier ("unchanged"/"splice"/"seeded"/"cold"/...).
    mode: str = "cold"
    dirty_functions: list[str] = field(default_factory=list)
    clean_functions: list[str] = field(default_factory=list)
    replayed: int = 0
    fresh: int = 0
    baseline_key: str | None = None
    new_baseline_key: str | None = None
    baseline: dict = field(default_factory=dict)
    analysis: object = None
    update: object = None

    @property
    def new_findings(self) -> list[Finding]:
        return [
            finding
            for finding, status in zip(self.findings, self.statuses)
            if status == "new"
        ]

    def summary(self) -> dict:
        statuses = Counter(self.statuses)
        return {
            "mode": self.mode,
            "dirty_functions": sorted(self.dirty_functions),
            "clean_functions": len(self.clean_functions),
            "replayed": self.replayed,
            "fresh": self.fresh,
            "new": statuses.get("new", 0),
            "unchanged": statuses.get("unchanged", 0),
            "fixed": len(self.absent),
            "findings": len(self.findings),
        }


def check_diff(
    new_source: str,
    *,
    old_source: str | None = None,
    old_analysis=None,
    baseline: dict | None = None,
    store=None,
    options=None,
    checkers=None,
    unused_suppressions: bool = True,
    filename: str = "<source>",
    persist: bool = True,
) -> DiffCheckReport:
    """Differentially check ``new_source`` against a baseline.

    The baseline comes from (in order) the ``baseline`` record, the
    store's ``base-`` record for ``old_source``, or a fresh
    :func:`build_baseline` of ``old_source`` (analyzing it if
    ``old_analysis`` was not given).  Runs provenance-off: the splice
    tier of the update ladder requires it, and witnesses would defeat
    replay.  With ``persist`` and a store, the new text's baseline
    (and, on a live base analysis, its function summaries) are written
    back so the next diff starts warm.
    """
    from repro.core import perf
    from repro.core.analysis import AnalysisOptions, analyze_source
    from repro.core.incremental import update_analysis
    from repro.service.store import ResultStore

    if options is None:
        options = getattr(old_analysis, "options", None) or AnalysisOptions()
    selected = (
        None if checkers is None
        else {checker.id for checker in select_checkers(checkers)}
    )

    with perf.configured(track_provenance=False), obs.span("diffcheck.run"):
        baseline_key = None
        if old_source is not None:
            baseline_key = ResultStore.baseline_key(
                old_source, options, checkers=selected,
                unused_suppressions=unused_suppressions,
            )
        if baseline is None and store is not None and baseline_key:
            record = store.get_record(baseline_key)
            if (
                record is not None
                and record.get("baseline_version") == BASELINE_VERSION
            ):
                baseline = record
                obs.count("diffcheck.baseline_hits")
        if baseline is None:
            if old_analysis is None:
                if old_source is None:
                    raise DiffError(
                        "check_diff needs old_source, old_analysis, "
                        "or a baseline record"
                    )
                if store is not None:
                    old_analysis, _ = store.load_or_analyze(
                        old_source, options, name=filename
                    )
                    if (
                        persist
                        and getattr(old_analysis, "program", None)
                        is not None
                    ):
                        store.put_function_summaries(
                            old_analysis, old_source, options
                        )
                else:
                    old_analysis = analyze_source(
                        old_source, options, filename=filename
                    )
            if old_source is None:
                raise DiffError(
                    "building a baseline needs the old source text"
                )
            baseline = build_baseline(
                old_analysis, old_source,
                checkers=checkers,
                unused_suppressions=unused_suppressions,
            )
            if store is not None and persist and baseline_key:
                store.put(baseline_key, baseline)

        update = None
        if old_analysis is not None and old_source is not None:
            analysis, update = update_analysis(
                old_analysis, old_source, new_source, options,
                filename=filename, store=store,
            )
            mode = update.mode
            if (
                store is not None
                and persist
                and getattr(analysis, "program", None) is not None
            ):
                # Persist the updated artifact + summaries so the next
                # check of this text starts from the store, not cold.
                from repro.service.serialize import encode_analysis

                new_key = store.key_for(new_source, options)
                if not store.has(new_key):
                    store.put(
                        new_key,
                        encode_analysis(
                            analysis, name=filename, source=new_source
                        ),
                    )
                store.put_function_summaries(
                    analysis, new_source, options
                )
        elif store is not None:
            analysis, hit = store.load_or_analyze(
                new_source, options, name=filename
            )
            mode = "cached" if hit else "cold"
        else:
            analysis = analyze_source(
                new_source, options, filename=filename
            )
            mode = "cold"

        rows_unchanged = None
        if (
            update is not None
            and update.mode in ("unchanged", "splice", "seeded")
            and getattr(analysis, "program", None) is not None
            and getattr(old_analysis, "ig", None) is not None
        ):
            # The update ladder's equivalence guarantee: outside the
            # planner's dirty set, points-to rows are byte-identical
            # to the old analysis — and the baseline records exactly
            # those (it is keyed by / built from the old text).
            # Per-stmt rows merge facts over *invocation contexts*, so
            # a function can change rows without re-analysis when an
            # ancestor's call behavior changes — a retargeted function
            # pointer drops the old target's context, say.
            suspect = set(update.dirty_functions or ())
            suspect |= set(update.changed or ())
            suspect |= set(update.reanalyzed or ())
            if analysis.ig is not old_analysis.ig:
                # The IG was rebuilt (seeded tier), so its shape may
                # differ.  Behavior changes show up as per-function
                # call-profile differences between the two invocation
                # graphs (the root never enters the memo counters, so
                # ``reanalyzed`` alone misses it); every victim is
                # then a transitive callee of a seed.  When the update
                # reused the old IG in place (unchanged/splice tiers),
                # every context multiset is unchanged by construction
                # and profiles would compare an IG against itself —
                # skip the walks.
                old_profile = _ig_call_profile(old_analysis.ig)
                new_profile = _ig_call_profile(analysis.ig)
                seeds = set(update.changed or ())
                seeds |= set(update.reanalyzed or ())
                for func in set(old_profile) | set(new_profile):
                    if old_profile.get(func) != new_profile.get(func):
                        seeds.add(func)
                suspect |= _callee_closure(
                    seeds, old_profile, new_profile
                )
            rows_unchanged = set(analysis.program.functions) - suspect
        state = _program_state(
            analysis, new_source,
            baseline=baseline, rows_unchanged=rows_unchanged,
        )
        clean, dirty = _plan_replay(baseline, state)
        obs.count("diffcheck.dirty_functions", len(dirty))
        obs.count("diffcheck.clean_functions", len(clean))

        facts = _facts_for(analysis, dirty)
        with obs.span("diffcheck.fresh"):
            raw_fresh = run_checkers(
                analysis, source=None, checkers=checkers, facts=facts
            )
        fresh_kept = [
            finding
            for finding in raw_fresh
            if _is_unmap(finding) or finding.func in dirty
        ]
        replayed: list[Finding] = []
        for func in sorted(clean):
            replayed.extend(
                _replay_findings(
                    baseline["functions"][func], state["functions"][func]
                )
            )
        obs.count("diffcheck.findings_replayed", len(replayed))
        obs.count("diffcheck.findings_fresh", len(fresh_kept))

        merged = replayed + fresh_kept
        findings = finalize_findings(
            merged, new_source,
            checkers=selected, unused_suppressions=unused_suppressions,
        )
        statuses, absent = _classify(
            findings, baseline.get("reported", [])
        )

        per_func: dict[str, list] = {
            func: [] for func in state["functions"]
        }
        for finding in merged:
            if not _is_unmap(finding) and finding.func in per_func:
                per_func[finding.func].append(finding.as_dict())
        new_baseline = {
            "baseline_version": BASELINE_VERSION,
            "globals": state["globals"],
            "checkers": sorted(selected) if selected is not None else None,
            "unused_suppressions": bool(unused_suppressions),
            "functions": {
                func: dict(entry, findings=per_func[func])
                for func, entry in state["functions"].items()
            },
            "reported": [
                [finding_fingerprint(finding), finding.as_dict()]
                for finding in findings
            ],
        }
        new_baseline_key = None
        if store is not None and persist:
            new_baseline_key = ResultStore.baseline_key(
                new_source, options, checkers=selected,
                unused_suppressions=unused_suppressions,
            )
            store.put(new_baseline_key, new_baseline)

        new_count = sum(1 for status in statuses if status == "new")
        obs.count("diffcheck.findings_new", new_count)
        obs.count("diffcheck.findings_fixed", len(absent))
        obs.event(
            "diffcheck",
            mode=mode,
            dirty=len(dirty),
            replayed=len(replayed),
            new=new_count,
            fixed=len(absent),
        )
        return DiffCheckReport(
            findings=findings,
            statuses=statuses,
            absent=absent,
            mode=mode,
            dirty_functions=sorted(dirty),
            clean_functions=sorted(clean),
            replayed=len(replayed),
            fresh=len(fresh_kept),
            baseline_key=baseline_key,
            new_baseline_key=new_baseline_key,
            baseline=new_baseline,
            analysis=analysis,
            update=update,
        )
