"""Null-dereference checker.

At every dereference site (``*p = ...``, ``... = *p``, or an indirect
call ``(*fp)()``), look up the pointer's targets in the points-to set
flowing into the statement.  The paper's definiteness flag maps
straight onto severity:

* ``(p, NULL, D)`` with no other target — the pointer is NULL on
  *every* execution path reaching the statement: ``error``.
* ``(p, NULL, P)`` or NULL alongside other targets — some path leaves
  it NULL: ``warning``.

The definite case is the one the fuzz gate cross-examines against the
concrete interpreter: a run that executes the statement must raise
``NullDereference``.
"""

from __future__ import annotations

from repro.core.pointsto import D

from repro.checkers.base import Checker, CheckContext, Finding, register


@register
class NullDeref(Checker):
    id = "null-deref"
    description = (
        "dereference of a pointer that definitely (error) or possibly "
        "(warning) points to NULL"
    )

    @classmethod
    def run(cls, ctx: CheckContext) -> list[Finding]:
        findings = []
        for site in ctx.facts.derefs:
            pts = ctx.pts_at(site.stmt)
            if pts is None:  # unreachable statement
                continue
            loc = ctx.resolve(site.name, site.func)
            if loc is None:
                continue
            targets = pts.targets_of(loc)
            null_pairs = [(t, d) for t, d in targets if t.is_null]
            if not null_pairs:
                continue
            others = [t for t, _ in targets if not t.is_null]
            definite = not others and null_pairs[0][1] is D
            action = "write through" if site.write else "read through"
            if definite:
                message = (
                    f"{action} '{site.name}', which is NULL on every "
                    f"path reaching this statement"
                )
            else:
                message = (
                    f"{action} '{site.name}', which may be NULL at "
                    f"this point"
                )
            findings.append(
                Finding(
                    checker=cls.id,
                    message=message,
                    definite=definite,
                    func=site.func,
                    stmt=site.stmt,
                    line=site.line or None,
                    witness=ctx.witness_for(loc, null_pairs[0][0]),
                    extra={
                        "targets": sorted(str(t) for t, _ in targets),
                        "access": "write" if site.write else "read",
                    },
                )
            )
        return findings
