"""Heap-unreachability leak checker.

The paper models all dynamic memory as the single ``heap`` location,
so a leak cannot be phrased per-object; instead the companion
heap-connection analysis (:mod:`repro.core.heapconn`) tracks which
stack locations still have a path to heap-directed storage.  For every
function that allocates, the facts layer records whether *any*
heap-directed relationship survives to some exit point
(``CheckFacts.heap_alive``).  When none does — every pointer that
reached the allocation was overwritten or went out of scope before
every ``return`` — the allocation can no longer be freed by this
function or anything it returns into: a leak ``warning`` on each
reachable allocation site.

Always a warning, never an error: with one abstract heap location the
analysis cannot prove the *specific* allocation unreachable (another
context's heap storage shares the location), matching the paper's
possible-level confidence for heap facts.
"""

from __future__ import annotations

from repro.checkers.base import Checker, CheckContext, Finding, register


@register
class HeapLeak(Checker):
    id = "heap-leak"
    description = (
        "function allocates but no heap-directed pointer survives to "
        "any of its exit points"
    )

    @classmethod
    def run(cls, ctx: CheckContext) -> list[Finding]:
        findings = []
        leaky_funcs = {
            func
            for func, alive in ctx.facts.heap_alive.items()
            if alive is False
        }
        if not leaky_funcs:
            return findings
        for site in ctx.facts.allocs:
            if site.func not in leaky_funcs:
                continue
            pts = ctx.pts_at(site.stmt)
            if pts is None:  # unreachable allocation never runs
                continue
            receiver = f" into '{site.name}'" if site.name else ""
            witness = []
            if site.name is not None:
                loc = ctx.resolve(site.name, site.func)
                heap = next(
                    (t for t, _ in (pts.targets_of(loc) if loc else ())
                     if t.is_heap),
                    None,
                )
                # The allocation's own derivation is recorded against
                # the *output* of the statement; the heap pair is
                # usually still visible downstream, so witness the pair
                # if the log has one.
                if loc is not None:
                    from repro.core.locations import HEAP

                    witness = ctx.witness_for(loc, heap or HEAP)
            findings.append(
                Finding(
                    checker=cls.id,
                    message=(
                        f"heap storage allocated{receiver} is unreachable "
                        f"from every exit of '{site.func}' (leak)"
                    ),
                    definite=False,
                    func=site.func,
                    stmt=site.stmt,
                    line=site.line or None,
                    witness=witness,
                    extra={"receiver": site.name or ""},
                )
            )
        return findings
