"""Finding renderers: SARIF 2.1.0 and plain text.

The SARIF document is deterministic — rules and results are sorted and
serialized with ``sort_keys`` — because the test suite asserts that a
fresh analysis and its decoded store artifact render byte-identical
reports.  Severity maps the paper's definiteness: definite findings
are ``error``-level results, possible ones ``warning``-level; the
provenance witness (when recorded) rides along in each result's
``properties.witness``.
"""

from __future__ import annotations

import json

from repro.checkers.base import CHECKERS, Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "repro-pta"
TOOL_VERSION = "1.0.0"


def to_sarif(findings: list[Finding], artifact: str) -> dict:
    """Findings as a SARIF 2.1.0 log with one run."""
    rule_ids = sorted({f.checker for f in findings})
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": CHECKERS[rule_id].description
                if rule_id in CHECKERS
                else rule_id
            },
        }
        for rule_id in rule_ids
    ]
    results = []
    for finding in findings:
        properties = {
            "definiteness": "D" if finding.definite else "P",
            "function": finding.func,
            "stmt": finding.stmt,
            "labels": list(finding.labels),
        }
        if finding.witness:
            properties["witness"] = finding.witness
        if finding.extra:
            properties["extra"] = dict(sorted(finding.extra.items()))
        result = {
            "ruleId": finding.checker,
            "level": finding.severity,
            "message": {"text": finding.message},
            "properties": properties,
        }
        if finding.line:
            result["locations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": artifact},
                        "region": {"startLine": finding.line},
                    }
                }
            ]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "informationUri":
                            "https://github.com/example/repro-pta",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(findings: list[Finding], artifact: str) -> str:
    return json.dumps(to_sarif(findings, artifact), indent=2,
                      sort_keys=True)


def render_findings(findings: list[Finding], artifact: str) -> str:
    """Plain-text report, one finding per line plus witness chains."""
    if not findings:
        return f"{artifact}: no findings"
    lines = []
    errors = 0
    for finding in findings:
        where = f"{artifact}:{finding.line}" if finding.line else artifact
        context = []
        if finding.func:
            context.append(f"in {finding.func}")
        if finding.labels:
            context.append(f"at {', '.join(finding.labels)}")
        suffix = f"  ({'; '.join(context)})" if context else ""
        lines.append(
            f"{where}: {finding.severity}: [{finding.checker}] "
            f"{finding.message}{suffix}"
        )
        if finding.severity == "error":
            errors += 1
        for step in finding.witness:
            stmt = step.get("stmt")
            at = f" @s{stmt}" if stmt is not None else ""
            lines.append(
                f"    why: {step['rule']} [{step['definiteness']}] "
                f"{step['src']} -> {step['tgt']}{at} in {step['func']}"
            )
    warnings = len(findings) - errors
    lines.append(
        f"{len(findings)} finding(s): {errors} error(s), "
        f"{warnings} warning(s)"
    )
    return "\n".join(lines)
