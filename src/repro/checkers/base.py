"""Checker framework core: findings, the registry, and the run context.

A *checker* is a client of the finished points-to analysis: it walks
the per-point triples (and the companion read/write and heap-connection
results) and emits :class:`Finding` records for likely pointer bugs.
Severity is keyed to the paper's definite/possible distinction — a
fact that holds on *every* path (D) yields an ``error``, a fact that
holds on *some* path (P) yields a ``warning``.

Checkers run against a live
:class:`~repro.core.analysis.PointsToAnalysis` or a cached
:class:`~repro.service.serialize.DecodedAnalysis`; the
:class:`CheckContext` hides the difference, and the payload carries
the program-shape facts (:mod:`repro.checkers.facts`) a decoded result
would otherwise lack.  The test suite asserts both forms produce
byte-identical SARIF.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core import provenance as prov_mod
from repro.core.locations import AbsLoc
from repro.core.pointsto import PointsToSet


@dataclass
class Finding:
    """One checker diagnosis.

    ``definite`` mirrors the analysis's D/P flag for the underlying
    fact and determines :attr:`severity`; ``stmt`` is a live statement
    id while the finding is being built and is canonicalized by the
    runner so fresh and decoded runs report identical ids.
    """

    checker: str
    message: str
    definite: bool
    func: str | None = None
    stmt: int | None = None
    line: int | None = None
    labels: tuple[str, ...] = ()
    witness: list[dict] = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    @property
    def severity(self) -> str:
        return "error" if self.definite else "warning"

    def sort_key(self):
        return (
            self.func or "",
            self.line or 0,
            self.checker,
            self.message,
            self.stmt or 0,
        )

    def as_dict(self) -> dict:
        return {
            "checker": self.checker,
            "severity": self.severity,
            "definite": self.definite,
            "message": self.message,
            "func": self.func,
            "stmt": self.stmt,
            "line": self.line,
            "labels": list(self.labels),
            "witness": self.witness,
            "extra": dict(sorted(self.extra.items())),
        }


#: Registry of shipped checkers, keyed by checker id.  Populated by the
#: :func:`register` decorator when the checker modules are imported
#: (``repro.checkers.__init__`` imports them all).
CHECKERS: dict[str, type["Checker"]] = {}


def register(cls: type["Checker"]) -> type["Checker"]:
    CHECKERS[cls.id] = cls
    return cls


class Checker:
    """Base class for checkers (see the registry in :data:`CHECKERS`)."""

    id: str = ""
    description: str = ""

    @classmethod
    def run(cls, ctx: "CheckContext") -> list[Finding]:
        raise NotImplementedError


def render_witness(log, src: AbsLoc, tgt: AbsLoc) -> list[dict]:
    """The derivation witness of one pair as JSON-safe steps (the same
    shape the ``explain:`` query verb uses, newest record first)."""
    steps = []
    for rid, record in prov_mod.witness(log, src, tgt):
        step = {
            "id": rid,
            "src": str(record.src),
            "tgt": str(record.tgt),
            "definiteness": "D" if record.definite else "P",
            "rule": record.rule,
            "class": record.classification,
            "stmt": record.stmt_id,
            "func": record.func,
            "path": list(record.path),
        }
        if record.extra:
            step["extra"] = dict(record.extra)
        if len(record.parents) > 1:
            step["other_parents"] = list(record.parents[1:])
        steps.append(step)
    return steps


class CheckContext:
    """Uniform checker-facing view of a live or decoded analysis."""

    def __init__(self, analysis, facts):
        self.analysis = analysis
        self.facts = facts
        #: True when a SimpleProgram is available (fresh result); a
        #: DecodedAnalysis sets ``program = None``.
        self.live = getattr(analysis, "program", None) is not None
        self._rw_maps: dict[str, dict] = {}

    # -- analysis access ---------------------------------------------------

    def pts_at(self, stmt_id: int) -> PointsToSet | None:
        """Points-to set flowing into a statement (None: unreachable)."""
        return self.analysis.at_stmt(stmt_id)

    def resolve(self, name: str, func: str | None) -> AbsLoc | None:
        """A variable name in ``func``'s scope -> its abstract location."""
        if self.live:
            try:
                return self.analysis.env(func).var_loc(name)
            except KeyError:
                return None
        return self.analysis.resolve(name, func)

    def read_write_map(self, func: str) -> dict:
        """stmt_id -> :class:`~repro.core.readwrite.ReadWriteSets` for
        the function's reachable statements (live: computed on demand;
        decoded: from the payload's precomputed section)."""
        cached = self._rw_maps.get(func)
        if cached is not None:
            return cached
        if self.live:
            from repro.core.readwrite import function_read_write

            sets_list = function_read_write(self.analysis, func)
        else:
            sets_list = self.analysis.read_write(func)
        result = {sets.stmt_id: sets for sets in sets_list}
        self._rw_maps[func] = result
        return result

    # -- provenance --------------------------------------------------------

    @property
    def provenance(self):
        """The producing run's derivation log, or None."""
        return getattr(self.analysis, "provenance", None)

    def witness_for(self, src: AbsLoc | None, tgt: AbsLoc) -> list[dict]:
        """Derivation witness for (src, tgt), or [] when provenance was
        off or the pair has no recorded derivation."""
        log = self.provenance
        if log is None or src is None:
            return []
        return render_witness(log, src, tgt)

    # -- shared predicates -------------------------------------------------

    @staticmethod
    def null_targets(pairs: Iterable) -> list:
        return [(tgt, d) for tgt, d in pairs if tgt.is_null]
