"""Loop-interference (parallelism-blocker) checker.

The paper's own motivating client: read/write sets computed from the
points-to facts (:mod:`repro.core.readwrite`) decide whether two
statements can run in parallel.  For every loop, the checker tests
each pair of body statements for a read-write or write-write conflict
on an abstract location — the condition that blocks parallelizing or
reordering the loop's iterations.

To keep the signal about *pointers* (rather than flagging every
``i = i + 1`` against its own loop test), a pair is only reported when
at least one of the two statements dereferences a pointer or calls
through a function pointer — the conflicts the points-to analysis
exists to expose.  Findings are always warnings: a conflict blocks a
transformation, it is not by itself a bug.
"""

from __future__ import annotations

from repro.checkers.base import Checker, CheckContext, Finding, register

#: Cap on the overlap locations echoed into a finding's message.
_MAX_SHOWN = 4


@register
class LoopInterference(Checker):
    id = "loop-interference"
    description = (
        "pointer-mediated read-write conflict between statements of "
        "one loop body (blocks parallelization)"
    )

    @classmethod
    def _indirect_targets(cls, ctx: CheckContext) -> dict:
        """stmt id -> locations accessed *through a pointer* there (the
        dereferenced pointers' points-to targets).  Conflicts are only
        reported on these, so plain loop-index dependences
        (``i = i + 1`` vs the loop test) stay out of the report."""
        targets: dict[int, set] = {}
        for site in ctx.facts.derefs:
            pts = ctx.pts_at(site.stmt)
            loc = ctx.resolve(site.name, site.func)
            if pts is None or loc is None:
                continue
            targets.setdefault(site.stmt, set()).update(
                t for t, _ in pts.targets_of(loc)
            )
        return targets

    @classmethod
    def run(cls, ctx: CheckContext) -> list[Finding]:
        findings = []
        deref_stmts = ctx.facts.deref_stmts
        indirect = cls._indirect_targets(ctx)
        seen: set[tuple[str, int, int]] = set()
        for loop in ctx.facts.loops:
            rw_map = ctx.read_write_map(loop.func)
            sets = [rw_map[s] for s in loop.stmts if s in rw_map]
            # Order pairs by source line so live (raw statement ids)
            # and decoded (canonical ids) runs enumerate identically;
            # ids only break ties within a line, where both id spaces
            # preserve lowering order.
            sets.sort(key=lambda rw: (ctx.facts.lines.get(rw.stmt_id, 0),
                                      rw.stmt_id))
            for i, first in enumerate(sets):
                for second in sets[i + 1:]:
                    if first.stmt_id not in deref_stmts and \
                            second.stmt_id not in deref_stmts:
                        continue
                    key = (loop.func, first.stmt_id, second.stmt_id)
                    if key in seen:  # nested loops repeat inner pairs
                        continue
                    overlap = (
                        (first.may_write & second.may_write)
                        | (first.may_write & second.reads)
                        | (first.reads & second.may_write)
                    )
                    through_ptr = (
                        indirect.get(first.stmt_id, set())
                        | indirect.get(second.stmt_id, set())
                    )
                    overlap = {
                        loc for loc in overlap & through_ptr
                        if not loc.is_null and not loc.is_function
                    }
                    if not overlap:
                        continue
                    seen.add(key)
                    names = sorted(str(loc) for loc in overlap)
                    shown = ", ".join(names[:_MAX_SHOWN])
                    if len(names) > _MAX_SHOWN:
                        shown += ", ..."
                    line_a = ctx.facts.lines.get(first.stmt_id) or None
                    line_b = ctx.facts.lines.get(second.stmt_id) or None
                    findings.append(
                        Finding(
                            checker=cls.id,
                            message=(
                                f"loop body statements conflict on "
                                f"{shown}; iterations cannot be "
                                f"parallelized"
                            ),
                            definite=False,
                            func=loop.func,
                            stmt=first.stmt_id,
                            line=line_a,
                            extra={
                                "locations": names,
                                "other_line": line_b,
                                "loop_line": loop.line or None,
                            },
                        )
                    )
        return findings
