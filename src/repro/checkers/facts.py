"""Program-shape facts the checkers need, in encodable form.

Checkers must give identical verdicts on a live analysis and on a
:class:`~repro.service.serialize.DecodedAnalysis` reconstituted from
the content-addressed store (the SARIF byte-identity gate in the test
suite).  A decoded result has no :class:`SimpleProgram`, so everything
the checkers read off the IR — dereference sites, pointer uses,
return statements, allocation sites, loop bodies, heap liveness at
function exits — is extracted here once, on the live side, and
serialized as the payload's ``"checkfacts"`` section.

The facts are *syntactic* except for ``heap_alive``, which bakes in
the heap-connection analysis (:mod:`repro.core.heapconn`) verdict at
each function's exit points so the leak checker needs no live matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.frontend.ctypes import PointerType, decay
from repro.simple.ir import (
    AddrOf,
    BasicKind,
    BasicStmt,
    Ref,
    SDoWhile,
    SFor,
    SReturn,
    SWhile,
    iter_stmts,
)

#: Schema version of the encoded section (independent of the payload's
#: FORMAT_VERSION so readers can evolve the two separately).
FACTS_VERSION = 1

USE_COPY = "copy"
USE_ARG = "arg"
USE_RETURN = "return"


@dataclass(frozen=True)
class DerefSite:
    """A statement that loads or stores through pointer ``name``."""

    stmt: int
    func: str
    name: str
    line: int
    write: bool


@dataclass(frozen=True)
class UseSite:
    """A plain pointer-typed variable consumed as a value (copied,
    passed as a call argument, or returned).  ``assigned`` is True when
    the variable is ever assigned / address-taken / a parameter in its
    function — the uninitialized-use checker only looks at the rest."""

    stmt: int
    func: str
    name: str
    line: int
    kind: str
    assigned: bool


@dataclass(frozen=True)
class ReturnSite:
    """A ``return`` statement.  ``name`` is the returned variable when
    the value is a plain reference; ``addr`` is the variable whose
    address is returned directly (``return &x``); ``ptr`` is whether
    the function's return type involves pointers at all."""

    stmt: int
    func: str
    line: int
    name: str | None
    addr: str | None
    ptr: bool


@dataclass(frozen=True)
class AllocSite:
    """A heap allocation; ``name`` is the receiving variable when the
    left side is a plain reference."""

    stmt: int
    func: str
    line: int
    name: str | None


@dataclass(frozen=True)
class LoopSite:
    """One loop: the basic statements of its body (plus condition
    re-evaluation and step), for the interference checker."""

    func: str
    line: int
    stmts: tuple[int, ...]


@dataclass
class CheckFacts:
    derefs: list[DerefSite] = field(default_factory=list)
    uses: list[UseSite] = field(default_factory=list)
    returns: list[ReturnSite] = field(default_factory=list)
    allocs: list[AllocSite] = field(default_factory=list)
    loops: list[LoopSite] = field(default_factory=list)
    #: statement id -> source line, for every basic/return statement.
    lines: dict[int, int] = field(default_factory=dict)
    #: function -> is any heap-directed relationship still live at some
    #: exit point?  Only functions containing allocations appear; a
    #: function with no ``return`` statement reads as True (unknown).
    heap_alive: dict[str, bool] = field(default_factory=dict)

    @property
    def deref_stmts(self) -> frozenset[int]:
        return frozenset(d.stmt for d in self.derefs)

    # -- payload round-trip ------------------------------------------------

    def encode(self, stmt_ids: dict[int, int] | None = None) -> dict:
        """JSON-safe section; ``stmt_ids`` maps live statement ids to
        the payload's canonical ids (see serialize._canonical_stmt_ids).
        ``None`` name fields become ``""`` so rows stay sortable."""

        def sid(i: int) -> int:
            return stmt_ids[i] if stmt_ids is not None else i

        return {
            "version": FACTS_VERSION,
            "derefs": sorted(
                [sid(d.stmt), d.func, d.name, d.line, 1 if d.write else 0]
                for d in self.derefs
            ),
            "uses": sorted(
                [sid(u.stmt), u.func, u.name, u.line, u.kind,
                 1 if u.assigned else 0]
                for u in self.uses
            ),
            "returns": sorted(
                [sid(r.stmt), r.func, r.line, r.name or "", r.addr or "",
                 1 if r.ptr else 0]
                for r in self.returns
            ),
            "allocs": sorted(
                [sid(a.stmt), a.func, a.line, a.name or ""]
                for a in self.allocs
            ),
            "loops": sorted(
                [loop.func, loop.line, sorted(sid(s) for s in loop.stmts)]
                for loop in self.loops
            ),
            "lines": sorted([sid(k), v] for k, v in self.lines.items()),
            "heap_alive": {
                func: bool(alive)
                for func, alive in sorted(self.heap_alive.items())
            },
        }

    @classmethod
    def decode(cls, section: dict) -> "CheckFacts":
        facts = cls()
        for stmt, func, name, line, write in section.get("derefs", ()):
            facts.derefs.append(
                DerefSite(stmt, func, name, line, bool(write))
            )
        for stmt, func, name, line, kind, assigned in section.get("uses", ()):
            facts.uses.append(
                UseSite(stmt, func, name, line, kind, bool(assigned))
            )
        for stmt, func, line, name, addr, ptr in section.get("returns", ()):
            facts.returns.append(
                ReturnSite(stmt, func, line, name or None, addr or None,
                           bool(ptr))
            )
        for stmt, func, line, name in section.get("allocs", ()):
            facts.allocs.append(AllocSite(stmt, func, line, name or None))
        for func, line, stmts in section.get("loops", ()):
            facts.loops.append(LoopSite(func, line, tuple(stmts)))
        facts.lines = {stmt: line for stmt, line in section.get("lines", ())}
        facts.heap_alive = {
            func: bool(alive)
            for func, alive in section.get("heap_alive", {}).items()
        }
        return facts


# ---------------------------------------------------------------------------
# Extraction (live side)
# ---------------------------------------------------------------------------


def _is_pointer_var(program, func: str, name: str) -> bool:
    ctype = program.var_type(func, name)
    if ctype is None:
        return False
    return isinstance(decay(ctype), PointerType)


def _operands(stmt: BasicStmt) -> Iterable:
    if stmt.rvalue is not None:
        yield stmt.rvalue
    yield from stmt.operands
    yield from stmt.args


def _assigned_names(fn) -> set[str]:
    """Variables that are assigned, address-taken (so a callee may
    write them), or parameters — everything the uninitialized-use
    checker should *not* flag."""
    assigned = set(fn.param_names)
    for stmt in fn.iter_stmts():
        if not isinstance(stmt, BasicStmt):
            continue
        if stmt.lhs is not None and not stmt.lhs.deref:
            assigned.add(stmt.lhs.base)
        for op in _operands(stmt):
            if isinstance(op, AddrOf):
                assigned.add(op.ref.base)
    return assigned


def _chase_temp(fn, name: str) -> str | None:
    """The user variable an allocation lands in: casts lower
    ``h = (int *) malloc(4)`` to ``__t = malloc(4); h = __t`` — follow
    the copy chain out of lowering temps (None if it dead-ends)."""
    from repro.core.analysis import _is_temp_name

    for _ in range(4):  # copy chains from lowering are short
        if not _is_temp_name(name):
            return name
        for stmt in fn.iter_stmts():
            if (
                isinstance(stmt, BasicStmt)
                and stmt.kind is BasicKind.COPY
                and isinstance(stmt.rvalue, Ref)
                and stmt.rvalue.is_plain_var
                and stmt.rvalue.base == name
                and stmt.lhs is not None
                and stmt.lhs.is_plain_var
            ):
                name = stmt.lhs.base
                break
        else:
            return None
    return None if _is_temp_name(name) else name


def _loop_stmt_ids(loop) -> tuple[int, ...]:
    """Basic statements re-executed on every iteration: the body, the
    condition re-evaluation, and (for ``for``) the step."""
    blocks = [loop.body, loop.cond_eval]
    if isinstance(loop, SFor):
        blocks.append(loop.step)
    ids = []
    for block in blocks:
        if block is None:
            continue
        for stmt in iter_stmts(block):
            if isinstance(stmt, BasicStmt) and stmt.kind is not BasicKind.NOP:
                ids.append(stmt.stmt_id)
            elif isinstance(stmt, SReturn):
                ids.append(stmt.stmt_id)
    return tuple(dict.fromkeys(ids))


def _heap_alive(analysis, funcs_with_allocs: set[str]) -> dict[str, bool]:
    """Per allocating function: does any heap-directed relationship
    survive to some exit point?  Functions without an explicit
    ``return`` read as alive (we never see their exit state)."""
    if not funcs_with_allocs:
        return {}
    from repro.core.analysis import _is_temp_name
    from repro.core.heapconn import HeapConnectionAnalysis

    # The connection analysis is per-function (entry state comes from
    # the function's own points-to rows; callees contribute only their
    # heap-inertness verdict), so run it only where allocations live —
    # the differential engine restricts this to the dirty set.
    heap = HeapConnectionAnalysis(analysis)
    alive_map: dict[str, bool] = {}
    for func in sorted(funcs_with_allocs):
        fn = analysis.program.functions.get(func)
        if fn is None:
            continue
        heap.analyze_function(func)
        exits = [s for s in fn.iter_stmts() if isinstance(s, SReturn)]
        if not exits:
            alive_map[func] = True
            continue
        alive = False
        for stmt in exits:
            matrix = heap.point_info.get(stmt.stmt_id)
            if matrix is None:
                continue
            # Lowering temps are dead after their single use; a heap
            # connection only a temp still holds cannot be freed.
            if any(not _is_temp_name(m.base) for m in matrix.members()):
                alive = True
                break
        alive_map[func] = alive
    return alive_map


def collect_facts(analysis, funcs=None) -> CheckFacts:
    """Extract checker facts from a live analysis (requires
    ``analysis.program``).

    ``funcs`` restricts extraction to the named functions — the
    differential engine (:mod:`repro.checkers.diff`) passes the dirty
    set so detectors and the heap-connection sweep only pay for what an
    edit actually invalidated.  ``None`` extracts everything.
    """
    program = analysis.program
    facts = CheckFacts()
    funcs_with_allocs: set[str] = set()

    names = sorted(program.functions) if funcs is None else sorted(
        set(funcs) & set(program.functions)
    )
    for fname in names:
        fn = program.functions[fname]
        assigned = _assigned_names(fn)
        loop_nodes = []

        for stmt in fn.iter_stmts():
            if isinstance(stmt, (SWhile, SDoWhile, SFor)):
                loop_nodes.append(stmt)
                continue

            if isinstance(stmt, SReturn):
                line = stmt.loc.line
                facts.lines[stmt.stmt_id] = line
                value = stmt.value
                if value is None:
                    continue
                ptr = fn.return_type.involves_pointers()
                name = addr = None
                if isinstance(value, Ref):
                    if value.deref:
                        facts.derefs.append(
                            DerefSite(stmt.stmt_id, fname, value.base,
                                      line, write=False)
                        )
                    elif value.is_plain_var:
                        name = value.base
                        if _is_pointer_var(program, fname, name):
                            facts.uses.append(
                                UseSite(stmt.stmt_id, fname, name, line,
                                        USE_RETURN, name in assigned)
                            )
                elif isinstance(value, AddrOf):
                    addr = value.ref.base
                facts.returns.append(
                    ReturnSite(stmt.stmt_id, fname, line, name, addr, ptr)
                )
                continue

            if not isinstance(stmt, BasicStmt):
                continue
            line = stmt.loc.line
            facts.lines[stmt.stmt_id] = line

            if stmt.lhs is not None and stmt.lhs.deref:
                facts.derefs.append(
                    DerefSite(stmt.stmt_id, fname, stmt.lhs.base, line,
                              write=True)
                )
            for op in _operands(stmt):
                # AddrOf never loads memory (&(*p).f computes an
                # address), so it is not a dereference site.
                if isinstance(op, Ref) and op.deref:
                    facts.derefs.append(
                        DerefSite(stmt.stmt_id, fname, op.base, line,
                                  write=False)
                    )

            if stmt.kind is BasicKind.CALL and stmt.callee_ptr is not None:
                # An indirect call loads the function-pointer variable.
                facts.derefs.append(
                    DerefSite(stmt.stmt_id, fname, stmt.callee_ptr, line,
                              write=False)
                )

            if stmt.kind is BasicKind.ALLOC:
                funcs_with_allocs.add(fname)
                name = None
                if stmt.lhs is not None and stmt.lhs.is_plain_var:
                    name = _chase_temp(fn, stmt.lhs.base)
                facts.allocs.append(
                    AllocSite(stmt.stmt_id, fname, line, name)
                )

            if stmt.kind is BasicKind.COPY and isinstance(stmt.rvalue, Ref):
                ref = stmt.rvalue
                if ref.is_plain_var and _is_pointer_var(program, fname,
                                                        ref.base):
                    facts.uses.append(
                        UseSite(stmt.stmt_id, fname, ref.base, line,
                                USE_COPY, ref.base in assigned)
                    )
            for arg in stmt.args:
                if isinstance(arg, Ref) and arg.is_plain_var and \
                        _is_pointer_var(program, fname, arg.base):
                    facts.uses.append(
                        UseSite(stmt.stmt_id, fname, arg.base, line,
                                USE_ARG, arg.base in assigned)
                    )

        # Loop sites last: their fallback line (structured statements
        # often carry NO_LOC) needs the body lines collected above.
        for loop in loop_nodes:
            body_ids = _loop_stmt_ids(loop)
            if not body_ids:
                continue
            body_lines = [facts.lines[s] for s in body_ids
                          if facts.lines.get(s)]
            line = loop.loc.line or (min(body_lines) if body_lines else 0)
            facts.loops.append(LoopSite(fname, line, body_ids))

    facts.heap_alive = _heap_alive(analysis, funcs_with_allocs)
    return facts
