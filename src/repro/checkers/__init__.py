"""Pointer-bug checkers built on the points-to facts.

The classic payoff of the paper's analysis: client detectors that
consume the per-point triples, the invocation graph, the heap
connection matrices, and the read/write sets to diagnose pointer bugs
— with severity keyed to the definite/possible distinction and, when
provenance tracking is on, a derivation "why" chain attached to each
finding.  See docs/CHECKERS.md for the catalog.

Importing this package registers the shipped checkers; the registry
lives in :data:`repro.checkers.base.CHECKERS`.
"""

from repro.checkers.base import (
    CHECKERS,
    Checker,
    CheckContext,
    Finding,
    register,
)
from repro.checkers.facts import CheckFacts, collect_facts

# Importing the checker modules populates the registry.
from repro.checkers import (  # noqa: E402  (after base/facts by design)
    dangling,
    interference,
    leak,
    nullderef,
    uninit,
)
from repro.checkers.runner import (
    UNUSED_SUPPRESSION,
    CheckerError,
    finalize_findings,
    parse_suppressions,
    run_checkers,
    select_checkers,
)
from repro.checkers.diff import (
    BASELINE_VERSION,
    DiffCheckReport,
    DiffError,
    build_baseline,
    check_diff,
    finding_fingerprint,
)
from repro.checkers.sarif import render_findings, render_sarif, to_sarif

__all__ = [
    "BASELINE_VERSION",
    "CHECKERS",
    "CheckContext",
    "CheckFacts",
    "Checker",
    "CheckerError",
    "DiffCheckReport",
    "DiffError",
    "Finding",
    "UNUSED_SUPPRESSION",
    "build_baseline",
    "check_diff",
    "collect_facts",
    "dangling",
    "finalize_findings",
    "finding_fingerprint",
    "interference",
    "leak",
    "nullderef",
    "parse_suppressions",
    "register",
    "render_findings",
    "render_sarif",
    "run_checkers",
    "select_checkers",
    "to_sarif",
    "uninit",
]
